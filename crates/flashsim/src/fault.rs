//! Seeded, deterministic fault injection across a flash array.
//!
//! [`FaultPlan`] is the single entry point for partial-failure injection:
//! latent per-chunk corruption (the uncorrectable-error-rate failure mode),
//! transient read timeouts, and stuck-device slowdowns. Whole-device
//! failure stays on [`FlashArray::fail_device`]; a plan covers everything
//! *smaller* than a device.
//!
//! Every random draw comes from [`DetRng`] substreams derived from one
//! seed, so two arrays driven by plans with equal seeds and equal call
//! sequences suffer byte-for-byte identical damage. Corruption walks
//! chunks in sorted-handle order per device, and each device gets its own
//! transient-fault substream, which keeps the injection independent of
//! `HashMap` iteration order and of unrelated reads on other devices.

use reo_sim::rng::DetRng;

use crate::array::FlashArray;
use crate::device::DeviceId;

/// Cumulative injection counters of a [`FaultPlan`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Chunks corrupted across all injection rounds.
    pub chunks_corrupted: u64,
    /// Calls to [`FaultPlan::inject_latent_corruption`].
    pub corruption_rounds: u64,
    /// Calls to [`FaultPlan::arm_transient_faults`].
    pub transient_arms: u64,
    /// Calls to [`FaultPlan::slow_device`].
    pub slowdowns: u64,
    /// Power losses planned via [`FaultPlan::crash_tear_bytes`].
    pub crashes: u64,
}

/// A deterministic source of partial failures for a [`FlashArray`].
///
/// # Examples
///
/// ```
/// use reo_flashsim::{DeviceConfig, FaultPlan, FlashArray};
/// use reo_sim::SimClock;
///
/// let mut array = FlashArray::new(5, DeviceConfig::intel_540s(), SimClock::new());
/// let mut plan = FaultPlan::new(42);
/// // Nothing stored yet, so nothing to corrupt — but the call is valid.
/// assert_eq!(plan.inject_latent_corruption(&mut array, 0.01), 0);
/// assert_eq!(plan.stats().corruption_rounds, 1);
/// ```
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    corruption: DetRng,
    transient_root: DetRng,
    power_loss: DetRng,
    stats: FaultStats,
}

impl FaultPlan {
    /// Creates a plan whose every draw is determined by `seed`.
    pub fn new(seed: u64) -> Self {
        let root = DetRng::from_seed(seed);
        FaultPlan {
            seed,
            corruption: root.derive("latent-corruption"),
            transient_root: root.derive("transient-faults"),
            power_loss: root.derive("power-loss"),
            stats: FaultStats::default(),
        }
    }

    /// The seed this plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent fault seed for one stream (e.g. one target
    /// of a cluster) from a base experiment seed. Pure and stable:
    /// `(base, stream)` always yields the same seed, distinct streams get
    /// decorrelated draws, and stream 0 is *not* the base seed — so a
    /// 1-target cluster still replays its own schedule, not the
    /// single-node experiment's.
    pub fn derive_stream_seed(base: u64, stream: u64) -> u64 {
        // SplitMix64 over the combined words; the same mixer the
        // deterministic RNG family uses.
        let mut x = base
            .rotate_left(17)
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// Cumulative injection counters.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// One round of latent corruption: every intact chunk on every healthy
    /// device is independently lost with probability `rate`. Returns the
    /// number of chunks corrupted. Devices stay healthy — the damage is
    /// per-chunk, surfacing as medium errors on the next read or scrub.
    pub fn inject_latent_corruption(&mut self, array: &mut FlashArray, rate: f64) -> usize {
        let mut corrupted = 0;
        for i in 0..array.device_count() {
            let dev = array.device_mut(DeviceId(i));
            if dev.is_healthy() {
                corrupted += dev.corrupt_chunks_randomly(rate, &mut self.corruption);
            }
        }
        self.stats.corruption_rounds += 1;
        self.stats.chunks_corrupted += corrupted as u64;
        corrupted
    }

    /// Arms per-read transient timeouts at `rate` on every device. Each
    /// device receives its own substream, so the pattern on one device
    /// does not depend on traffic to the others. Re-arming (including with
    /// a new rate) restarts the streams; `rate <= 0` disarms.
    pub fn arm_transient_faults(&mut self, array: &mut FlashArray, rate: f64) {
        for i in 0..array.device_count() {
            let rng = self.transient_root.derive(&format!("device-{i}"));
            array
                .device_mut(DeviceId(i))
                .arm_transient_faults(rate, rng);
        }
        self.stats.transient_arms += 1;
    }

    /// Scales one device's service times by `factor` (a stuck or throttled
    /// device; `1.0` restores nominal speed).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or `factor` is not finite and
    /// positive.
    pub fn slow_device(&mut self, array: &mut FlashArray, id: DeviceId, factor: f64) {
        array.device_mut(id).set_slowdown(factor);
        self.stats.slowdowns += 1;
    }

    /// Plans the tail damage of a power loss: how many bytes of the
    /// journal's flushed log the interrupted last sector write tears off,
    /// uniformly drawn from `0..=max`. Equal seeds and call sequences tear
    /// equal byte counts, keeping crash experiments reproducible.
    pub fn crash_tear_bytes(&mut self, max: u64) -> u64 {
        self.stats.crashes += 1;
        self.power_loss.below(max + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::{ChunkHandle, StoredChunk};
    use crate::device::DeviceConfig;
    use reo_sim::{ByteSize, ServiceModel, SimClock, SimDuration, SimTime};

    fn small_array() -> FlashArray {
        let config = DeviceConfig {
            capacity: ByteSize::from_mib(4),
            read: ServiceModel::new(SimDuration::from_micros(90), 512 * 1024 * 1024),
            write: ServiceModel::new(SimDuration::from_micros(220), 470 * 1024 * 1024),
            erase_block: ByteSize::from_kib(256),
            pe_cycle_limit: 1000,
        };
        let mut array = FlashArray::new(3, config, SimClock::new());
        for d in 0..3usize {
            for c in 0..16u64 {
                array
                    .device_mut(DeviceId(d))
                    .write_chunk(
                        ChunkHandle::new(d as u64 * 100 + c),
                        StoredChunk::synthetic(ByteSize::from_kib(32)),
                        SimTime::ZERO,
                    )
                    .unwrap();
            }
        }
        array
    }

    #[test]
    fn equal_seeds_corrupt_equal_chunks() {
        let mut a = small_array();
        let mut b = small_array();
        let hit_a = FaultPlan::new(99).inject_latent_corruption(&mut a, 0.2);
        let hit_b = FaultPlan::new(99).inject_latent_corruption(&mut b, 0.2);
        assert_eq!(hit_a, hit_b);
        assert!(hit_a > 0);
        for d in 0..3usize {
            assert_eq!(
                a.device(DeviceId(d)).intact_handles(),
                b.device(DeviceId(d)).intact_handles()
            );
        }
    }

    #[test]
    fn different_seeds_usually_differ() {
        let mut a = small_array();
        let mut b = small_array();
        FaultPlan::new(1).inject_latent_corruption(&mut a, 0.3);
        FaultPlan::new(2).inject_latent_corruption(&mut b, 0.3);
        let same = (0..3usize).all(|d| {
            a.device(DeviceId(d)).intact_handles() == b.device(DeviceId(d)).intact_handles()
        });
        assert!(!same, "48 chunks at 30%: identical damage is implausible");
    }

    #[test]
    fn failed_devices_are_skipped() {
        let mut array = small_array();
        array.fail_device(DeviceId(0));
        let mut plan = FaultPlan::new(7);
        // Rate 1.0 corrupts everything reachable: only the healthy 32.
        assert_eq!(plan.inject_latent_corruption(&mut array, 1.0), 32);
        assert_eq!(plan.stats().chunks_corrupted, 32);
    }

    #[test]
    fn arming_and_slowdown_reach_every_device() {
        let mut array = small_array();
        let mut plan = FaultPlan::new(3);
        plan.arm_transient_faults(&mut array, 0.1);
        for d in 0..3usize {
            assert!(array.device(DeviceId(d)).transient_faults_armed());
        }
        plan.slow_device(&mut array, DeviceId(1), 8.0);
        assert_eq!(array.device(DeviceId(1)).slowdown(), 8.0);
        assert_eq!(array.device(DeviceId(0)).slowdown(), 1.0);
        assert_eq!(plan.stats().transient_arms, 1);
        assert_eq!(plan.stats().slowdowns, 1);
        plan.arm_transient_faults(&mut array, 0.0);
        assert!(!array.device(DeviceId(2)).transient_faults_armed());
    }
}
