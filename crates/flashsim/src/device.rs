//! A single simulated flash SSD.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use reo_sim::rng::DetRng;
use reo_sim::{ByteSize, ServiceModel, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::chunk::{ChunkHandle, StoredChunk};

/// Index of a device within its array.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DeviceId(pub usize);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ssd{}", self.0)
    }
}

/// Static configuration of one flash device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeviceConfig {
    /// Usable capacity.
    pub capacity: ByteSize,
    /// Read service model (per-op latency + bandwidth).
    pub read: ServiceModel,
    /// Write service model.
    pub write: ServiceModel,
    /// Erase-block size used for wear estimation.
    pub erase_block: ByteSize,
    /// Program/erase cycle budget per block (1,000–5,000 for contemporary
    /// NAND per the paper's introduction).
    pub pe_cycle_limit: u32,
}

impl DeviceConfig {
    /// A configuration resembling the paper's 120 GB Intel 540s SATA SSDs.
    pub fn intel_540s() -> Self {
        DeviceConfig {
            capacity: ByteSize::from_gib(120),
            read: ServiceModel::new(SimDuration::from_micros(90), 520 * 1024 * 1024),
            write: ServiceModel::new(SimDuration::from_micros(220), 470 * 1024 * 1024),
            erase_block: ByteSize::from_mib(2),
            pe_cycle_limit: 3000,
        }
    }
}

/// A simple greedy-garbage-collection write-amplification model.
///
/// Flash cannot overwrite in place: as the device fills, garbage
/// collection must relocate live pages to reclaim blocks, multiplying the
/// physical bytes programmed per logical byte written. This model uses
/// the classic fill-level approximation
///
/// ```text
/// WA(u) = 1 / (1 - u / (1 + op))      (clamped to [1, max_factor])
/// ```
///
/// where `u` is the logical utilization and `op` the over-provisioned
/// spare fraction. It is deliberately coarse — enough to surface the
/// wear and service-time cost of writing a nearly full device, which is
/// exactly the regime a cache lives in.
///
/// # Examples
///
/// ```
/// use reo_flashsim::WriteAmplification;
///
/// let wa = WriteAmplification::new(0.07);
/// assert_eq!(wa.factor(0.0), 1.0);
/// assert!(wa.factor(0.9) > 2.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WriteAmplification {
    overprovisioning: f64,
    max_factor: f64,
}

impl WriteAmplification {
    /// Creates a model with the given over-provisioned spare fraction
    /// (consumer SSDs are typically ~7%) and a default clamp of 10×.
    ///
    /// # Panics
    ///
    /// Panics if `overprovisioning` is negative or non-finite.
    pub fn new(overprovisioning: f64) -> Self {
        assert!(
            overprovisioning >= 0.0 && overprovisioning.is_finite(),
            "overprovisioning must be a non-negative finite fraction"
        );
        WriteAmplification {
            overprovisioning,
            max_factor: 10.0,
        }
    }

    /// The amplification factor at logical utilization `u` (0.0–1.0).
    pub fn factor(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        let physical_fill = u / (1.0 + self.overprovisioning);
        if physical_fill >= 1.0 {
            return self.max_factor;
        }
        (1.0 / (1.0 - physical_fill)).clamp(1.0, self.max_factor)
    }
}

/// Health state of a device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceState {
    /// Servicing requests normally.
    #[default]
    Healthy,
    /// Failed: every chunk is inaccessible; commands return
    /// [`FlashError::DeviceFailed`].
    Failed,
}

/// Errors returned by device operations.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum FlashError {
    /// The device is in the [`DeviceState::Failed`] state.
    DeviceFailed(DeviceId),
    /// The handle does not name a chunk on this device.
    UnknownChunk(ChunkHandle),
    /// The chunk exists but its contents were lost in a failure.
    Corrupted(ChunkHandle),
    /// The device has no room for the chunk.
    DeviceFull {
        /// Device that rejected the write.
        device: DeviceId,
        /// Bytes requested.
        requested: ByteSize,
        /// Bytes available.
        available: ByteSize,
    },
    /// A transient media hiccup: the read timed out without losing data.
    /// Unlike [`FlashError::Corrupted`] the chunk is fine — retrying
    /// after a short backoff is expected to succeed.
    TransientTimeout {
        /// Device that timed out.
        device: DeviceId,
        /// The chunk whose read timed out.
        handle: ChunkHandle,
    },
}

impl fmt::Display for FlashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashError::DeviceFailed(d) => write!(f, "device {d} has failed"),
            FlashError::UnknownChunk(h) => write!(f, "no such chunk {h}"),
            FlashError::Corrupted(h) => write!(f, "chunk {h} is corrupted"),
            FlashError::DeviceFull {
                device,
                requested,
                available,
            } => write!(
                f,
                "device {device} full: requested {requested}, available {available}"
            ),
            FlashError::TransientTimeout { device, handle } => {
                write!(f, "transient timeout reading {handle} on device {device}")
            }
        }
    }
}

impl Error for FlashError {}

/// Cumulative operation counters for a device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceStats {
    /// Completed chunk reads.
    pub reads: u64,
    /// Completed chunk writes (programs).
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Estimated erase operations (bytes written / erase-block size).
    pub erases_estimated: u64,
    /// Simulated nanoseconds operations spent waiting behind the
    /// device's `busy_until` horizon before starting (queueing delay).
    pub queued_nanos: u64,
    /// Simulated nanoseconds the device spent servicing operations.
    pub busy_nanos: u64,
    /// Transient read timeouts surfaced (each retried read that timed
    /// out again counts once per timeout).
    pub transient_timeouts: u64,
}

impl DeviceStats {
    /// Mean queueing delay per completed operation.
    pub fn mean_queue_delay(&self) -> SimDuration {
        let ops = self.reads + self.writes;
        SimDuration::from_nanos(self.queued_nanos.checked_div(ops).unwrap_or(0))
    }

    /// Mean service time per completed operation.
    pub fn mean_service_time(&self) -> SimDuration {
        let ops = self.reads + self.writes;
        SimDuration::from_nanos(self.busy_nanos.checked_div(ops).unwrap_or(0))
    }
}

/// One simulated flash SSD.
///
/// The device serializes its own operations: each read/write begins no
/// earlier than the completion of the previous operation on the same
/// device (the `busy_until` horizon), while different devices proceed in
/// parallel. The caller advances the shared [`reo_sim::SimClock`] to the
/// maximum completion time of the devices it touched.
#[derive(Clone, Debug)]
pub struct FlashDevice {
    id: DeviceId,
    config: DeviceConfig,
    state: DeviceState,
    chunks: HashMap<ChunkHandle, ChunkSlot>,
    used: ByteSize,
    busy_until: SimTime,
    stats: DeviceStats,
    write_amplification: Option<WriteAmplification>,
    transient: Option<TransientFaults>,
    slowdown: f64,
}

/// Armed transient-fault injector: each read independently times out with
/// probability `rate`, drawn from a dedicated deterministic stream.
#[derive(Clone, Debug)]
struct TransientFaults {
    rate: f64,
    rng: DetRng,
}

#[derive(Clone, Debug)]
enum ChunkSlot {
    Intact(StoredChunk),
    /// The chunk's bytes were lost in a device failure; length retained
    /// for accounting until the owner deletes or rewrites it.
    Lost(ByteSize),
}

impl FlashDevice {
    /// Creates a healthy, empty device.
    pub fn new(id: DeviceId, config: DeviceConfig) -> Self {
        FlashDevice {
            id,
            config,
            state: DeviceState::Healthy,
            chunks: HashMap::new(),
            used: ByteSize::ZERO,
            busy_until: SimTime::ZERO,
            stats: DeviceStats::default(),
            write_amplification: None,
            transient: None,
            slowdown: 1.0,
        }
    }

    /// Arms per-read transient timeouts: every chunk read independently
    /// fails with [`FlashError::TransientTimeout`] at probability `rate`,
    /// drawn from `rng`. A rate of zero (or less) disarms the injector.
    ///
    /// Transient faults model recoverable media hiccups (command timeouts,
    /// retried ECC corrections), so they never touch stored bytes.
    pub fn arm_transient_faults(&mut self, rate: f64, rng: DetRng) {
        self.transient = if rate > 0.0 {
            Some(TransientFaults { rate, rng })
        } else {
            None
        };
    }

    /// `true` when a transient-fault injector is armed.
    pub fn transient_faults_armed(&self) -> bool {
        self.transient.is_some()
    }

    /// Scales every service time by `factor` — a stuck or throttled device
    /// (`factor > 1`) or nominal speed (`1.0`).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn set_slowdown(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "slowdown factor must be positive and finite"
        );
        self.slowdown = factor;
    }

    /// The current service-time scale factor.
    pub fn slowdown(&self) -> f64 {
        self.slowdown
    }

    fn scaled(&self, d: SimDuration) -> SimDuration {
        if self.slowdown == 1.0 {
            d
        } else {
            SimDuration::from_nanos((d.as_nanos() as f64 * self.slowdown).round() as u64)
        }
    }

    /// Attaches a garbage-collection write-amplification model (off by
    /// default). With it, writes to a fuller device program more physical
    /// bytes — costing wear and service time.
    pub fn set_write_amplification(&mut self, model: Option<WriteAmplification>) {
        self.write_amplification = model;
    }

    /// The device's array index.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// The device's configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Current health state.
    pub fn state(&self) -> DeviceState {
        self.state
    }

    /// `true` when the device can service requests.
    pub fn is_healthy(&self) -> bool {
        self.state == DeviceState::Healthy
    }

    /// Bytes currently allocated on the device.
    pub fn used(&self) -> ByteSize {
        self.used
    }

    /// Bytes still available.
    pub fn available(&self) -> ByteSize {
        self.config.capacity.saturating_sub(self.used)
    }

    /// Cumulative operation counters.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Estimated wear as a fraction of the P/E budget consumed (0.0–1.0+).
    pub fn wear_fraction(&self) -> f64 {
        let blocks = (self.config.capacity.as_bytes() / self.config.erase_block.as_bytes()).max(1);
        let budget = blocks as f64 * self.config.pe_cycle_limit as f64;
        self.stats.erases_estimated as f64 / budget
    }

    /// The instant the device becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Marks the device failed. Every stored chunk becomes corrupted.
    pub fn fail(&mut self) {
        self.state = DeviceState::Failed;
        for slot in self.chunks.values_mut() {
            if let ChunkSlot::Intact(chunk) = slot {
                *slot = ChunkSlot::Lost(chunk.len());
            }
        }
    }

    /// Replaces the device with a fresh spare: healthy, empty, zero wear.
    ///
    /// The identity (array slot) is retained; contents are gone — callers
    /// are expected to run their rebuild path.
    pub fn replace_with_spare(&mut self) {
        self.state = DeviceState::Healthy;
        self.chunks.clear();
        self.used = ByteSize::ZERO;
        self.stats = DeviceStats::default();
        // A fresh spare has nominal speed and no injected media faults.
        self.transient = None;
        self.slowdown = 1.0;
        // busy_until is preserved: the new device cannot retroactively have
        // been idle in the past.
    }

    /// Writes a chunk, returning the completion instant.
    ///
    /// The operation starts at `max(now, busy_until)` and occupies the
    /// device until completion. Overwriting an existing handle releases the
    /// old space first.
    ///
    /// # Errors
    ///
    /// * [`FlashError::DeviceFailed`] — device is failed.
    /// * [`FlashError::DeviceFull`] — insufficient capacity.
    pub fn write_chunk(
        &mut self,
        handle: ChunkHandle,
        chunk: StoredChunk,
        now: SimTime,
    ) -> Result<SimTime, FlashError> {
        if !self.is_healthy() {
            return Err(FlashError::DeviceFailed(self.id));
        }
        let len = chunk.len();
        let released = match self.chunks.get(&handle) {
            Some(ChunkSlot::Intact(old)) => old.len(),
            Some(ChunkSlot::Lost(old_len)) => *old_len,
            None => ByteSize::ZERO,
        };
        let effective_used = self.used.saturating_sub(released);
        if effective_used + len > self.config.capacity {
            return Err(FlashError::DeviceFull {
                device: self.id,
                requested: len,
                available: self.config.capacity.saturating_sub(effective_used),
            });
        }
        // Garbage-collection write amplification: the fuller the device,
        // the more physical bytes one logical write programs.
        let utilization = effective_used.as_bytes() as f64 / self.config.capacity.as_bytes() as f64;
        let factor = self
            .write_amplification
            .map(|wa| wa.factor(utilization))
            .unwrap_or(1.0);
        let physical = ByteSize::from_bytes((len.as_bytes() as f64 * factor) as u64);

        self.used = effective_used + len;
        self.chunks.insert(handle, ChunkSlot::Intact(chunk));

        self.stats.writes += 1;
        self.stats.bytes_written += physical.as_bytes();
        self.stats.erases_estimated = self.stats.bytes_written / self.config.erase_block.as_bytes();

        let start = self.busy_until.max(now);
        let done = start + self.scaled(self.config.write.service_time(physical));
        self.stats.queued_nanos += start.saturating_since(now).as_nanos();
        self.stats.busy_nanos += done.saturating_since(start).as_nanos();
        self.busy_until = done;
        Ok(done)
    }

    /// Reads a chunk, returning its contents and the completion instant.
    ///
    /// # Errors
    ///
    /// * [`FlashError::DeviceFailed`] — device is failed.
    /// * [`FlashError::UnknownChunk`] — no such handle.
    /// * [`FlashError::Corrupted`] — the chunk was lost in a failure (the
    ///   handle exists because a prior incarnation of the device held it).
    pub fn read_chunk(
        &mut self,
        handle: ChunkHandle,
        now: SimTime,
    ) -> Result<(StoredChunk, SimTime), FlashError> {
        if !self.is_healthy() {
            return Err(FlashError::DeviceFailed(self.id));
        }
        let chunk = match self.chunks.get(&handle) {
            None => return Err(FlashError::UnknownChunk(handle)),
            Some(ChunkSlot::Lost(_)) => return Err(FlashError::Corrupted(handle)),
            Some(ChunkSlot::Intact(c)) => c.clone(),
        };
        if let Some(t) = &mut self.transient {
            if t.rng.chance(t.rate) {
                self.stats.transient_timeouts += 1;
                return Err(FlashError::TransientTimeout {
                    device: self.id,
                    handle,
                });
            }
        }
        self.stats.reads += 1;
        self.stats.bytes_read += chunk.len().as_bytes();
        let start = self.busy_until.max(now);
        let done = start + self.scaled(self.config.read.service_time(chunk.len()));
        self.stats.queued_nanos += start.saturating_since(now).as_nanos();
        self.stats.busy_nanos += done.saturating_since(start).as_nanos();
        self.busy_until = done;
        Ok((chunk, done))
    }

    /// Checks whether a chunk is present and intact, without charging any
    /// service time (a metadata operation).
    pub fn chunk_is_intact(&self, handle: ChunkHandle) -> bool {
        self.is_healthy() && matches!(self.chunks.get(&handle), Some(ChunkSlot::Intact(_)))
    }

    /// Corrupts a single chunk in place — the paper's "partial data loss"
    /// failure mode (a worn-out flash block) as opposed to a whole-device
    /// failure. The device stays healthy; reads of this chunk return
    /// [`FlashError::Corrupted`] until it is rewritten.
    ///
    /// Unknown handles are ignored.
    pub fn corrupt_chunk(&mut self, handle: ChunkHandle) {
        if let Some(slot) = self.chunks.get_mut(&handle) {
            if let ChunkSlot::Intact(chunk) = slot {
                *slot = ChunkSlot::Lost(chunk.len());
            }
        }
    }

    /// Handles of intact chunks in sorted order — the deterministic
    /// iteration order fault injection walks.
    pub fn intact_handles(&self) -> Vec<ChunkHandle> {
        let mut handles: Vec<ChunkHandle> = self
            .chunks
            .iter()
            .filter(|(_, slot)| matches!(slot, ChunkSlot::Intact(_)))
            .map(|(h, _)| *h)
            .collect();
        handles.sort_unstable();
        handles
    }

    /// Latent (UER-style) corruption: each intact chunk is independently
    /// lost with probability `rate`, drawing from `rng` in sorted-handle
    /// order so equal seeds corrupt equal chunks. Returns how many chunks
    /// were corrupted. The device stays healthy.
    pub fn corrupt_chunks_randomly(&mut self, rate: f64, rng: &mut DetRng) -> usize {
        let mut corrupted = 0;
        for handle in self.intact_handles() {
            if rng.chance(rate) {
                self.corrupt_chunk(handle);
                corrupted += 1;
            }
        }
        corrupted
    }

    /// Removes a chunk, releasing its space. Unknown handles are ignored
    /// (idempotent delete). No service time is charged (TRIM-like).
    pub fn remove_chunk(&mut self, handle: ChunkHandle) {
        if let Some(slot) = self.chunks.remove(&handle) {
            let len = match slot {
                ChunkSlot::Intact(c) => c.len(),
                ChunkSlot::Lost(len) => len,
            };
            self.used = self.used.saturating_sub(len);
        }
    }

    /// Number of chunks tracked (intact or lost).
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Handles of every chunk present on the device — intact or lost — in
    /// sorted order. Recovery walks this list to find orphan chunks whose
    /// metadata never reached the journal.
    pub fn chunk_handles(&self) -> Vec<ChunkHandle> {
        let mut handles: Vec<ChunkHandle> = self.chunks.keys().copied().collect();
        handles.sort_unstable();
        handles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn fast_config() -> DeviceConfig {
        DeviceConfig {
            capacity: ByteSize::from_mib(1),
            read: ServiceModel::new(SimDuration::from_micros(100), 1024 * 1024 * 1024),
            write: ServiceModel::new(SimDuration::from_micros(200), 1024 * 1024 * 1024),
            erase_block: ByteSize::from_kib(128),
            pe_cycle_limit: 10,
        }
    }

    fn dev() -> FlashDevice {
        FlashDevice::new(DeviceId(0), fast_config())
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut d = dev();
        let h = ChunkHandle::new(1);
        let data = Bytes::from_static(b"abcdef");
        let done = d
            .write_chunk(h, StoredChunk::real(data.clone()), SimTime::ZERO)
            .unwrap();
        assert!(done.as_nanos() > 0);
        let (chunk, _) = d.read_chunk(h, done).unwrap();
        assert_eq!(chunk.payload().as_bytes().unwrap(), &data);
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().writes, 1);
    }

    #[test]
    fn device_serializes_operations() {
        let mut d = dev();
        let h1 = ChunkHandle::new(1);
        let h2 = ChunkHandle::new(2);
        let c = StoredChunk::synthetic(ByteSize::from_kib(4));
        // Both submitted at t=0: the second must queue behind the first.
        let t1 = d.write_chunk(h1, c.clone(), SimTime::ZERO).unwrap();
        let t2 = d.write_chunk(h2, c, SimTime::ZERO).unwrap();
        assert!(t2 > t1);
        assert!(t2.saturating_since(t1) >= SimDuration::from_micros(200));
    }

    #[test]
    fn capacity_enforced() {
        let mut d = dev();
        let big = StoredChunk::synthetic(ByteSize::from_mib(1));
        d.write_chunk(ChunkHandle::new(1), big.clone(), SimTime::ZERO)
            .unwrap();
        let err = d
            .write_chunk(
                ChunkHandle::new(2),
                StoredChunk::synthetic(ByteSize::from_bytes(1)),
                SimTime::ZERO,
            )
            .unwrap_err();
        assert!(matches!(err, FlashError::DeviceFull { .. }));
        // Overwriting the same handle is fine: space is released first.
        d.write_chunk(ChunkHandle::new(1), big, SimTime::ZERO)
            .unwrap();
    }

    #[test]
    fn failure_corrupts_chunks() {
        let mut d = dev();
        let h = ChunkHandle::new(1);
        d.write_chunk(
            h,
            StoredChunk::synthetic(ByteSize::from_kib(4)),
            SimTime::ZERO,
        )
        .unwrap();
        assert!(d.chunk_is_intact(h));
        d.fail();
        assert!(!d.is_healthy());
        assert!(!d.chunk_is_intact(h));
        assert_eq!(
            d.read_chunk(h, SimTime::ZERO).unwrap_err(),
            FlashError::DeviceFailed(DeviceId(0))
        );
    }

    #[test]
    fn spare_replacement_resets_contents_and_wear() {
        let mut d = dev();
        let h = ChunkHandle::new(1);
        d.write_chunk(
            h,
            StoredChunk::synthetic(ByteSize::from_kib(256)),
            SimTime::ZERO,
        )
        .unwrap();
        d.fail();
        d.replace_with_spare();
        assert!(d.is_healthy());
        assert_eq!(d.chunk_count(), 0);
        assert_eq!(d.used(), ByteSize::ZERO);
        assert_eq!(d.stats(), DeviceStats::default());
        // Reading the old handle now reports UnknownChunk, not Corrupted.
        assert_eq!(
            d.read_chunk(h, SimTime::ZERO).unwrap_err(),
            FlashError::UnknownChunk(h)
        );
    }

    #[test]
    fn corrupted_after_failure_and_replacement_cycle() {
        // A failed device that has NOT been replaced reports failure;
        // after an in-place "repair" (state flip) chunks read as corrupted.
        let mut d = dev();
        let h = ChunkHandle::new(9);
        d.write_chunk(
            h,
            StoredChunk::synthetic(ByteSize::from_kib(4)),
            SimTime::ZERO,
        )
        .unwrap();
        d.fail();
        // Simulate partial recovery: device returns but data is lost.
        d.state = DeviceState::Healthy;
        assert_eq!(
            d.read_chunk(h, SimTime::ZERO).unwrap_err(),
            FlashError::Corrupted(h)
        );
        // Rewriting the chunk heals it and does not double-count space.
        let used_before = d.used();
        d.write_chunk(
            h,
            StoredChunk::synthetic(ByteSize::from_kib(4)),
            SimTime::ZERO,
        )
        .unwrap();
        assert_eq!(d.used(), used_before);
        assert!(d.chunk_is_intact(h));
    }

    #[test]
    fn remove_chunk_releases_space_idempotently() {
        let mut d = dev();
        let h = ChunkHandle::new(1);
        d.write_chunk(
            h,
            StoredChunk::synthetic(ByteSize::from_kib(64)),
            SimTime::ZERO,
        )
        .unwrap();
        assert_eq!(d.used(), ByteSize::from_kib(64));
        d.remove_chunk(h);
        assert_eq!(d.used(), ByteSize::ZERO);
        d.remove_chunk(h); // no-op
        assert_eq!(d.used(), ByteSize::ZERO);
    }

    #[test]
    fn wear_accumulates_with_writes() {
        let mut d = dev();
        assert_eq!(d.wear_fraction(), 0.0);
        for i in 0..8 {
            d.write_chunk(
                ChunkHandle::new(i),
                StoredChunk::synthetic(ByteSize::from_kib(128)),
                SimTime::ZERO,
            )
            .unwrap();
        }
        // 1 MiB written / 128 KiB blocks = 8 erases; budget = 8 blocks * 10.
        assert_eq!(d.stats().erases_estimated, 8);
        assert!((d.wear_fraction() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn corrupt_chunk_is_partial_failure() {
        let mut d = dev();
        let h1 = ChunkHandle::new(1);
        let h2 = ChunkHandle::new(2);
        d.write_chunk(
            h1,
            StoredChunk::synthetic(ByteSize::from_kib(4)),
            SimTime::ZERO,
        )
        .unwrap();
        d.write_chunk(
            h2,
            StoredChunk::synthetic(ByteSize::from_kib(4)),
            SimTime::ZERO,
        )
        .unwrap();
        d.corrupt_chunk(h1);
        // The device stays healthy; only h1 is lost.
        assert!(d.is_healthy());
        assert!(!d.chunk_is_intact(h1));
        assert!(d.chunk_is_intact(h2));
        assert_eq!(
            d.read_chunk(h1, SimTime::ZERO).unwrap_err(),
            FlashError::Corrupted(h1)
        );
        assert!(d.read_chunk(h2, SimTime::ZERO).is_ok());
        // Space stays accounted until rewrite; rewriting heals it.
        let used = d.used();
        d.write_chunk(
            h1,
            StoredChunk::synthetic(ByteSize::from_kib(4)),
            SimTime::ZERO,
        )
        .unwrap();
        assert_eq!(d.used(), used);
        assert!(d.chunk_is_intact(h1));
        // Unknown handles are ignored.
        d.corrupt_chunk(ChunkHandle::new(404));
    }

    #[test]
    fn write_amplification_grows_with_fill() {
        let wa = WriteAmplification::new(0.07);
        assert_eq!(wa.factor(0.0), 1.0);
        assert!(wa.factor(0.5) < wa.factor(0.8));
        assert!(wa.factor(0.8) < wa.factor(0.99));
        assert!(wa.factor(1.0) <= 10.0, "clamped");
        // Zero over-provisioning hits the clamp at full utilization.
        assert_eq!(WriteAmplification::new(0.0).factor(1.0), 10.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_overprovisioning_panics() {
        let _ = WriteAmplification::new(-0.1);
    }

    #[test]
    fn amplified_writes_cost_more_wear_and_time() {
        let mut plain = dev();
        let mut amplified = dev();
        amplified.set_write_amplification(Some(WriteAmplification::new(0.07)));

        // Fill both to ~87%, then write one more chunk.
        for i in 0..7u64 {
            let c = StoredChunk::synthetic(ByteSize::from_kib(128));
            plain
                .write_chunk(ChunkHandle::new(i), c.clone(), SimTime::ZERO)
                .unwrap();
            amplified
                .write_chunk(ChunkHandle::new(i), c, SimTime::ZERO)
                .unwrap();
        }
        assert!(
            amplified.stats().bytes_written > plain.stats().bytes_written,
            "GC must have programmed extra bytes"
        );
        assert!(amplified.wear_fraction() > plain.wear_fraction());
        assert!(amplified.busy_until() > plain.busy_until());
    }

    #[test]
    fn transient_faults_are_recoverable_and_deterministic() {
        let mut a = dev();
        let mut b = dev();
        let h = ChunkHandle::new(1);
        for d in [&mut a, &mut b] {
            d.write_chunk(
                h,
                StoredChunk::synthetic(ByteSize::from_kib(4)),
                SimTime::ZERO,
            )
            .unwrap();
            d.arm_transient_faults(0.5, DetRng::from_seed(7));
        }
        let mut outcomes_a = Vec::new();
        let mut outcomes_b = Vec::new();
        for _ in 0..32 {
            outcomes_a.push(a.read_chunk(h, SimTime::ZERO).is_ok());
            outcomes_b.push(b.read_chunk(h, SimTime::ZERO).is_ok());
        }
        assert_eq!(outcomes_a, outcomes_b, "same seed, same timeout pattern");
        assert!(outcomes_a.iter().any(|ok| *ok), "not every read times out");
        assert!(outcomes_a.iter().any(|ok| !ok), "some reads time out");
        // The data is never lost: the chunk stays intact throughout.
        assert!(a.chunk_is_intact(h));
        // Disarming restores reliable reads.
        a.arm_transient_faults(0.0, DetRng::from_seed(7));
        assert!(!a.transient_faults_armed());
        for _ in 0..8 {
            assert!(a.read_chunk(h, SimTime::ZERO).is_ok());
        }
    }

    #[test]
    fn slowdown_scales_service_times() {
        let mut nominal = dev();
        let mut stuck = dev();
        stuck.set_slowdown(4.0);
        let h = ChunkHandle::new(1);
        let c = StoredChunk::synthetic(ByteSize::from_kib(64));
        let t_nominal = nominal.write_chunk(h, c.clone(), SimTime::ZERO).unwrap();
        let t_stuck = stuck.write_chunk(h, c, SimTime::ZERO).unwrap();
        assert_eq!(t_stuck.as_nanos(), 4 * t_nominal.as_nanos());
        let (_, r_nominal) = nominal.read_chunk(h, t_nominal).unwrap();
        let (_, r_stuck) = stuck.read_chunk(h, t_stuck).unwrap();
        assert!(
            r_stuck.saturating_since(t_stuck).as_nanos()
                == 4 * r_nominal.saturating_since(t_nominal).as_nanos()
        );
        // A spare replacement clears the slowdown.
        stuck.fail();
        stuck.replace_with_spare();
        assert_eq!(stuck.slowdown(), 1.0);
    }

    #[test]
    fn random_corruption_walks_sorted_handles_deterministically() {
        let build = || {
            let mut d = dev();
            for i in 0..32u64 {
                d.write_chunk(
                    ChunkHandle::new(i),
                    StoredChunk::synthetic(ByteSize::from_kib(16)),
                    SimTime::ZERO,
                )
                .unwrap();
            }
            d
        };
        let mut a = build();
        let mut b = build();
        let hit_a = a.corrupt_chunks_randomly(0.25, &mut DetRng::from_seed(11));
        let hit_b = b.corrupt_chunks_randomly(0.25, &mut DetRng::from_seed(11));
        assert_eq!(hit_a, hit_b);
        assert!(hit_a > 0, "a quarter of 32 chunks should hit at least once");
        assert!(hit_a < 32, "rate 0.25 must not corrupt everything");
        for i in 0..32u64 {
            let h = ChunkHandle::new(i);
            assert_eq!(a.chunk_is_intact(h), b.chunk_is_intact(h));
        }
        // Already-lost chunks are skipped by a second pass's walk.
        let intact_before = a.intact_handles().len();
        assert_eq!(intact_before, 32 - hit_a);
    }

    #[test]
    fn unknown_chunk_read() {
        let mut d = dev();
        assert_eq!(
            d.read_chunk(ChunkHandle::new(404), SimTime::ZERO)
                .unwrap_err(),
            FlashError::UnknownChunk(ChunkHandle::new(404))
        );
    }
}
