//! Chunk addressing and contents.

use std::fmt;

use bytes::Bytes;
use reo_sim::ByteSize;

/// An opaque, array-unique identifier for a stored chunk.
///
/// Handles are allocated by the layer that owns placement (the stripe
/// manager) and are stable across device failures: after a failure the
/// handle still names the chunk, but reads return
/// [`FlashError::Corrupted`](crate::FlashError::Corrupted).
///
/// # Examples
///
/// ```
/// use reo_flashsim::ChunkHandle;
///
/// let h = ChunkHandle::new(42);
/// assert_eq!(h.as_u64(), 42);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChunkHandle(u64);

impl ChunkHandle {
    /// Creates a handle from a raw value.
    pub const fn new(raw: u64) -> Self {
        ChunkHandle(raw)
    }

    /// The raw value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ChunkHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chunk#{}", self.0)
    }
}

/// Chunk contents: a real payload, or size-only ("synthetic") content.
///
/// The correctness tests and the examples store real bytes so that erasure
/// reconstruction can be verified exactly. The paper-scale experiment
/// sweeps move hundreds of gigabytes of simulated data; they use
/// `Synthetic` chunks, which occupy no memory but are still charged full
/// service time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChunkPayload {
    /// Real bytes.
    Real(Bytes),
    /// No stored bytes; only the length is tracked.
    Synthetic,
}

impl ChunkPayload {
    /// Returns the real bytes, if present.
    pub fn as_bytes(&self) -> Option<&Bytes> {
        match self {
            ChunkPayload::Real(b) => Some(b),
            ChunkPayload::Synthetic => None,
        }
    }

    /// `true` if this is a synthetic (size-only) payload.
    pub fn is_synthetic(&self) -> bool {
        matches!(self, ChunkPayload::Synthetic)
    }
}

/// A chunk as stored on a device.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoredChunk {
    len: ByteSize,
    payload: ChunkPayload,
}

impl StoredChunk {
    /// Creates a chunk with a real payload.
    pub fn real(bytes: Bytes) -> Self {
        StoredChunk {
            len: ByteSize::from_bytes(bytes.len() as u64),
            payload: ChunkPayload::Real(bytes),
        }
    }

    /// Creates a size-only chunk.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero — zero-length chunks are never valid.
    pub fn synthetic(len: ByteSize) -> Self {
        assert!(!len.is_zero(), "chunks must be non-empty");
        StoredChunk {
            len,
            payload: ChunkPayload::Synthetic,
        }
    }

    /// The chunk length.
    pub fn len(&self) -> ByteSize {
        self.len
    }

    /// `true` if the chunk is zero bytes long (never true for chunks built
    /// through the public constructors).
    pub fn is_empty(&self) -> bool {
        self.len.is_zero()
    }

    /// The payload.
    pub fn payload(&self) -> &ChunkPayload {
        &self.payload
    }

    /// Consumes the chunk, returning the payload.
    pub fn into_payload(self) -> ChunkPayload {
        self.payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_chunk_tracks_len() {
        let c = StoredChunk::real(Bytes::from_static(b"hello"));
        assert_eq!(c.len(), ByteSize::from_bytes(5));
        assert_eq!(c.payload().as_bytes().unwrap().as_ref(), b"hello");
        assert!(!c.payload().is_synthetic());
    }

    #[test]
    fn synthetic_chunk_has_no_bytes() {
        let c = StoredChunk::synthetic(ByteSize::from_kib(64));
        assert_eq!(c.len(), ByteSize::from_kib(64));
        assert!(c.payload().as_bytes().is_none());
        assert!(c.payload().is_synthetic());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_length_synthetic_panics() {
        let _ = StoredChunk::synthetic(ByteSize::ZERO);
    }

    #[test]
    fn handle_display() {
        assert_eq!(ChunkHandle::new(7).to_string(), "chunk#7");
    }
}
