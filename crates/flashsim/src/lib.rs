#![warn(missing_docs)]
//! Simulated flash SSDs and arrays for the Reo reproduction.
//!
//! The paper's testbed used an array of five 120 GB Intel 540s SATA SSDs.
//! This crate substitutes a deterministic user-space model that preserves
//! what the evaluation measures:
//!
//! * [`FlashDevice`] — one SSD: a chunk store with a service-time model,
//!   per-device queueing (operations on one device serialize; operations on
//!   different devices overlap), program/erase wear accounting, and a
//!   failure state. Failing a device corrupts every chunk on it, exactly
//!   like the paper's "shootdown" command.
//! * [`FlashArray`] — an ordered set of devices behind one
//!   [`SimClock`](reo_sim::SimClock),
//!   with whole-device failure injection and spare insertion
//!   ([`FlashArray::replace_device`]) that triggers the caller's rebuild
//!   path.
//! * [`FaultPlan`] — seeded partial-failure injection: latent per-chunk
//!   corruption, transient read timeouts, and stuck-device slowdowns, all
//!   deterministic under one seed.
//! * [`ChunkHandle`] / [`StoredChunk`] — chunk addressing and contents.
//!   Chunks can carry real payloads (used by the tests and examples to
//!   verify reconstruction byte-for-byte) or be payload-free, in which case
//!   only sizes/placement are tracked and service time is still charged —
//!   that is what the large experiment sweeps use.
//!
//! # Examples
//!
//! ```
//! use reo_flashsim::{DeviceConfig, FlashArray};
//! use reo_sim::{ByteSize, ServiceModel, SimClock, SimDuration};
//!
//! let clock = SimClock::new();
//! let cfg = DeviceConfig {
//!     capacity: ByteSize::from_gib(120),
//!     read: ServiceModel::new(SimDuration::from_micros(90), 520 * 1024 * 1024),
//!     write: ServiceModel::new(SimDuration::from_micros(220), 470 * 1024 * 1024),
//!     erase_block: ByteSize::from_mib(2),
//!     pe_cycle_limit: 3000,
//! };
//! let mut array = FlashArray::new(5, cfg, clock);
//! assert_eq!(array.device_count(), 5);
//! assert_eq!(array.healthy_devices().len(), 5);
//! ```

mod array;
mod chunk;
mod device;
mod fault;

pub use array::{ArrayStats, DeviceReport, FlashArray};
pub use chunk::{ChunkHandle, ChunkPayload, StoredChunk};
pub use device::{
    DeviceConfig, DeviceId, DeviceState, DeviceStats, FlashDevice, FlashError, WriteAmplification,
};
pub use fault::{FaultPlan, FaultStats};
