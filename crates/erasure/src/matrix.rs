//! Dense matrices over GF(2^8).

use std::fmt;

use crate::gf256;

/// A dense row-major matrix with elements in GF(2^8).
///
/// Used to build and invert the encoding matrices of the Reed–Solomon codec.
///
/// # Examples
///
/// ```
/// use reo_erasure::Matrix;
///
/// let id = Matrix::identity(3);
/// let v = Matrix::vandermonde(5, 3);
/// assert_eq!(&v.mul(&id), &v);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zero(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or either dimension is zero.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<u8>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Matrix { rows, cols, data }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    /// A `rows × cols` Vandermonde matrix: `m[r][c] = r^c` in GF(2^8).
    ///
    /// Any `cols` rows of this matrix are linearly independent, which is the
    /// property Reed–Solomon relies on. This is the construction the paper
    /// cites (Reed–Solomon over a Vandermonde matrix).
    pub fn vandermonde(rows: usize, cols: usize) -> Self {
        let mut m = Matrix::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, gf256::pow(r as u8, c as u32));
            }
        }
        m
    }

    /// A `k × m` Cauchy matrix: `m[i][j] = 1 / (x_i + y_j)` with
    /// `x_i = i + m`, `y_j = j`. Every square submatrix of a Cauchy matrix
    /// is invertible, so appending it to an identity yields a valid
    /// systematic encoding matrix directly.
    ///
    /// # Panics
    ///
    /// Panics if `k + m > 256` (the field runs out of distinct points).
    pub fn cauchy(k: usize, m: usize) -> Self {
        assert!(k + m <= 256, "k + m must be at most 256 for GF(256)");
        let mut out = Matrix::zero(k, m);
        for i in 0..k {
            for j in 0..m {
                let x = (i + m) as u8;
                let y = j as u8;
                out.set(i, j, gf256::inv(gf256::add(x, y)));
            }
        }
        out
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> u8 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets element at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: u8) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// A view of row `r`.
    pub fn row(&self, r: usize) -> &[u8] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0 {
                    continue;
                }
                for c in 0..rhs.cols {
                    let prod = gf256::mul(a, rhs.get(k, c));
                    out.set(r, c, gf256::add(out.get(r, c), prod));
                }
            }
        }
        out
    }

    /// Builds a new matrix from the given rows of `self`.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        assert!(!indices.is_empty(), "must select at least one row");
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &r in indices {
            data.extend_from_slice(self.row(r));
        }
        Matrix::from_rows(indices.len(), self.cols, data)
    }

    /// Inverts a square matrix by Gauss–Jordan elimination.
    ///
    /// Returns `None` if the matrix is singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn inverse(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "only square matrices invert");
        let n = self.rows;
        let mut work = self.clone();
        let mut inv = Matrix::identity(n);

        for col in 0..n {
            // Find pivot.
            let pivot = (col..n).find(|&r| work.get(r, col) != 0)?;
            if pivot != col {
                work.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // Scale pivot row to 1.
            let p = work.get(col, col);
            if p != 1 {
                let pinv = gf256::inv(p);
                work.scale_row(col, pinv);
                inv.scale_row(col, pinv);
            }
            // Eliminate the column from every other row.
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = work.get(r, col);
                if factor != 0 {
                    work.add_scaled_row(r, col, factor);
                    inv.add_scaled_row(r, col, factor);
                }
            }
        }
        Some(inv)
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }

    fn scale_row(&mut self, r: usize, factor: u8) {
        let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
        gf256::mul_slice(row, factor);
    }

    /// `row[dst] ^= factor * row[src]`.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) if `dst == src`.
    fn add_scaled_row(&mut self, dst: usize, src: usize, factor: u8) {
        debug_assert_ne!(dst, src, "source and destination rows must differ");
        let hi = dst.max(src);
        let (head, tail) = self.data.split_at_mut(hi * self.cols);
        let lo_start = dst.min(src) * self.cols;
        let lo_row = &mut head[lo_start..lo_start + self.cols];
        let hi_row = &mut tail[..self.cols];
        if dst == hi {
            gf256::mul_acc_slice(hi_row, lo_row, factor);
        } else {
            gf256::mul_acc_slice(lo_row, hi_row, factor);
        }
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            writeln!(f, "  {:02x?}", self.row(r))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_times_anything_is_identity_on_it() {
        let v = Matrix::vandermonde(4, 3);
        let id3 = Matrix::identity(3);
        assert_eq!(v.mul(&id3), v);
        let id4 = Matrix::identity(4);
        assert_eq!(id4.mul(&v), v);
    }

    #[test]
    fn vandermonde_first_column_is_ones_after_row_zero() {
        let v = Matrix::vandermonde(5, 3);
        // m[r][0] = r^0 = 1 for all rows.
        for r in 0..5 {
            assert_eq!(v.get(r, 0), 1);
        }
        // m[r][1] = r.
        for r in 0..5 {
            assert_eq!(v.get(r, 1), r as u8);
        }
    }

    #[test]
    fn identity_inverse_is_identity() {
        let id = Matrix::identity(5);
        assert_eq!(id.inverse().unwrap(), id);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        // A nontrivial invertible matrix: Cauchy square.
        let m = Matrix::cauchy(4, 4);
        let inv = m.inverse().expect("cauchy submatrix is invertible");
        assert_eq!(m.mul(&inv), Matrix::identity(4));
        assert_eq!(inv.mul(&m), Matrix::identity(4));
    }

    #[test]
    fn singular_matrix_returns_none() {
        // Two identical rows.
        let m = Matrix::from_rows(2, 2, vec![1, 2, 1, 2]);
        assert!(m.inverse().is_none());
        // Zero matrix.
        let z = Matrix::zero(3, 3);
        assert!(z.inverse().is_none());
    }

    #[test]
    fn select_rows_picks_in_order() {
        let v = Matrix::vandermonde(5, 2);
        let s = v.select_rows(&[4, 0]);
        assert_eq!(s.row(0), v.row(4));
        assert_eq!(s.row(1), v.row(0));
    }

    #[test]
    fn cauchy_all_square_submatrices_invertible_small() {
        let c = Matrix::cauchy(4, 4);
        // Every single entry is nonzero.
        for i in 0..4 {
            for j in 0..4 {
                assert_ne!(c.get(i, j), 0);
            }
        }
        // Every 2x2 submatrix has nonzero determinant.
        for r0 in 0..4 {
            for r1 in (r0 + 1)..4 {
                for c0 in 0..4 {
                    for c1 in (c0 + 1)..4 {
                        let det = gf256::add(
                            gf256::mul(c.get(r0, c0), c.get(r1, c1)),
                            gf256::mul(c.get(r0, c1), c.get(r1, c0)),
                        );
                        assert_ne!(det, 0, "submatrix ({r0},{r1})x({c0},{c1})");
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mul_shape_mismatch_panics() {
        let a = Matrix::zero(2, 3);
        let b = Matrix::zero(2, 3);
        let _ = a.mul(&b);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn inverse_non_square_panics() {
        let _ = Matrix::zero(2, 3).inverse();
    }

    #[test]
    fn debug_is_nonempty() {
        let s = format!("{:?}", Matrix::identity(2));
        assert!(s.contains("Matrix 2x2"));
    }

    fn arb_invertible(n: usize) -> impl Strategy<Value = Matrix> {
        // Random matrices over GF(256) are invertible with probability
        // ~0.996; retry via prop_filter on a singular draw.
        proptest::collection::vec(any::<u8>(), n * n)
            .prop_map(move |data| Matrix::from_rows(n, n, data))
            .prop_filter("matrix must be invertible", |m| m.inverse().is_some())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn random_inverse_roundtrip(m in arb_invertible(5)) {
            let inv = m.inverse().unwrap();
            prop_assert_eq!(m.mul(&inv), Matrix::identity(5));
        }

        #[test]
        fn mul_is_associative(
            a in proptest::collection::vec(any::<u8>(), 9),
            b in proptest::collection::vec(any::<u8>(), 9),
            c in proptest::collection::vec(any::<u8>(), 9),
        ) {
            let a = Matrix::from_rows(3, 3, a);
            let b = Matrix::from_rows(3, 3, b);
            let c = Matrix::from_rows(3, 3, c);
            prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
        }
    }
}
