//! Systematic Reed–Solomon encoding and reconstruction.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::gf256;
use crate::matrix::Matrix;

/// Widest stripe the fused row kernel gathers on the stack; wider
/// geometries fall back to the per-source kernels.
const MAX_FUSED: usize = 16;

/// Errors returned by the Reed–Solomon codec.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The requested geometry is invalid (zero data shards, zero total, or
    /// more than 256 total shards).
    InvalidShardCounts {
        /// Requested number of data shards.
        data: usize,
        /// Requested number of parity shards.
        parity: usize,
    },
    /// The number of shards passed does not match the codec geometry.
    WrongShardCount {
        /// Number of shards the codec expects.
        expected: usize,
        /// Number of shards provided.
        actual: usize,
    },
    /// Shards have differing lengths (all shards in a stripe must be equal).
    UnevenShards,
    /// A shard slice was empty.
    EmptyShards,
    /// More shards are missing than the parity count can recover.
    TooManyMissing {
        /// Number of missing shards.
        missing: usize,
        /// Number of parity shards (the recovery capability).
        parity: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::InvalidShardCounts { data, parity } => write!(
                f,
                "invalid shard geometry: {data} data + {parity} parity shards"
            ),
            CodecError::WrongShardCount { expected, actual } => {
                write!(f, "expected {expected} shards, got {actual}")
            }
            CodecError::UnevenShards => write!(f, "shards have differing lengths"),
            CodecError::EmptyShards => write!(f, "shards must be non-empty"),
            CodecError::TooManyMissing { missing, parity } => write!(
                f,
                "{missing} shards missing but only {parity} parity shards available"
            ),
        }
    }
}

impl Error for CodecError {}

/// A systematic Reed–Solomon code with `m` data shards and `k` parity
/// shards.
///
/// The encoding matrix is the classic Vandermonde construction: take the
/// `(m + k) × m` Vandermonde matrix, normalize its top `m × m` block to the
/// identity (multiplying the whole matrix by the block's inverse), and use
/// the bottom `k` rows to produce parity. Any `m` of the `m + k` shards then
/// suffice to reconstruct the rest — the recovery property the Reo paper
/// relies on for its 1-parity and 2-parity stripes.
///
/// # Examples
///
/// ```
/// use reo_erasure::ReedSolomon;
///
/// let rs = ReedSolomon::new(4, 2)?;
/// assert_eq!(rs.data_shards(), 4);
/// assert_eq!(rs.parity_shards(), 2);
/// assert_eq!(rs.total_shards(), 6);
/// # Ok::<(), reo_erasure::CodecError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ReedSolomon {
    data: usize,
    parity: usize,
    /// Full `(data + parity) × data` encoding matrix with identity on top.
    encode_matrix: Matrix,
    /// Multiply kernels for the parity rows, row-major `parity × data`,
    /// built once at construction so encode/delta paths never rebuild
    /// per-coefficient tables on the hot path.
    parity_kernels: Vec<gf256::MulTable>,
    /// Per-erasure-pattern decode plans (see [`DecodePlan`]).
    decode_cache: DecodeCache,
}

/// The decode work for one erasure pattern, ready to replay: the fused
/// multiply kernels of the inverted survivor matrix, one row of `data`
/// tables per missing data shard (rows in ascending missing-index
/// order). Building a plan pays the matrix inversion plus table
/// construction once; replaying it is pure [`gf256::mul_row_slice`]
/// passes — the same kernel the encode path uses.
#[derive(Clone, Debug)]
struct DecodePlan {
    /// Ascending indices of the data shards this plan recovers.
    data_missing: Vec<usize>,
    /// Row-major `data_missing.len() × data` multiply kernels mapping
    /// the first `data` surviving shards onto each missing data shard.
    kernels: Vec<gf256::MulTable>,
}

/// Cache of decode plans keyed by the present-shard bitmask (patterns
/// are only cacheable while `total_shards() <= 64`; wider codes build
/// plans per call). Interior mutability keeps
/// [`ReedSolomon::reconstruct`] on `&self`; clones start cold because
/// plans are derived state — cheap to rebuild, never part of codec
/// identity.
#[derive(Default)]
struct DecodeCache {
    plans: Mutex<HashMap<u64, Arc<DecodePlan>>>,
    /// Lookups answered from a cached plan.
    hits: AtomicU64,
    /// Lookups that had to build a plan (including uncacheable wide
    /// codes, which rebuild on every call).
    misses: AtomicU64,
}

impl Clone for DecodeCache {
    fn clone(&self) -> Self {
        DecodeCache::default()
    }
}

impl fmt::Debug for DecodeCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let patterns = self.plans.lock().map(|m| m.len()).unwrap_or(0);
        f.debug_struct("DecodeCache")
            .field("patterns", &patterns)
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .finish()
    }
}

impl ReedSolomon {
    /// Creates a codec for `data` data shards plus `parity` parity shards.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::InvalidShardCounts`] if `data == 0`, or
    /// `data + parity > 256` (GF(2^8) supports at most 256 shards).
    /// `parity == 0` is allowed and yields a no-op code (matching Reo's
    /// 0-parity stripes for cold clean data).
    pub fn new(data: usize, parity: usize) -> Result<Self, CodecError> {
        if data == 0 || data + parity > 256 {
            return Err(CodecError::InvalidShardCounts { data, parity });
        }
        let total = data + parity;
        let vand = Matrix::vandermonde(total, data);
        let top = vand.select_rows(&(0..data).collect::<Vec<_>>());
        let top_inv = top
            .inverse()
            .expect("top block of a Vandermonde matrix is always invertible");
        let encode_matrix = vand.mul(&top_inv);
        debug_assert_eq!(
            encode_matrix.select_rows(&(0..data).collect::<Vec<_>>()),
            Matrix::identity(data),
            "systematic encode matrix must start with identity"
        );
        let parity_kernels = (0..parity)
            .flat_map(|p| (0..data).map(move |d| (p, d)))
            .map(|(p, d)| gf256::MulTable::new(encode_matrix.get(data + p, d)))
            .collect();
        Ok(ReedSolomon {
            data,
            parity,
            encode_matrix,
            parity_kernels,
            decode_cache: DecodeCache::default(),
        })
    }

    /// Number of data shards `m`.
    pub fn data_shards(&self) -> usize {
        self.data
    }

    /// Number of parity shards `k`.
    pub fn parity_shards(&self) -> usize {
        self.parity
    }

    /// Total shards `n = m + k`.
    pub fn total_shards(&self) -> usize {
        self.data + self.parity
    }

    /// The encoding coefficient applied to data shard `d` when computing
    /// parity shard `p`.
    ///
    /// Exposed for the delta parity-update path, which needs individual
    /// coefficients rather than whole-stripe encodes.
    ///
    /// # Panics
    ///
    /// Panics if `p >= parity_shards()` or `d >= data_shards()`.
    pub fn parity_coefficient(&self, p: usize, d: usize) -> u8 {
        assert!(p < self.parity, "parity index out of range");
        assert!(d < self.data, "data index out of range");
        self.encode_matrix.get(self.data + p, d)
    }

    /// The precomputed multiply kernel for parity row `p`, data shard `d`.
    ///
    /// The kernel multiplies by [`Self::parity_coefficient`]`(p, d)`; the
    /// delta parity-update path uses it to fold the coefficient multiply
    /// into a single fused pass over the changed chunk.
    ///
    /// # Panics
    ///
    /// Panics if `p >= parity_shards()` or `d >= data_shards()`.
    pub fn parity_kernel(&self, p: usize, d: usize) -> &gf256::MulTable {
        assert!(p < self.parity, "parity index out of range");
        assert!(d < self.data, "data index out of range");
        &self.parity_kernels[p * self.data + d]
    }

    fn check_shards<T: AsRef<[u8]>>(&self, shards: &[T]) -> Result<usize, CodecError> {
        let len = shards
            .first()
            .map(|s| s.as_ref().len())
            .ok_or(CodecError::EmptyShards)?;
        if len == 0 {
            return Err(CodecError::EmptyShards);
        }
        if shards.iter().any(|s| s.as_ref().len() != len) {
            return Err(CodecError::UnevenShards);
        }
        Ok(len)
    }

    /// Encodes `parity_shards()` parity shards from exactly
    /// `data_shards()` equal-length data shards.
    ///
    /// # Errors
    ///
    /// * [`CodecError::WrongShardCount`] — wrong number of data shards.
    /// * [`CodecError::UnevenShards`] — shards of differing lengths.
    /// * [`CodecError::EmptyShards`] — zero-length shards.
    pub fn encode<T: AsRef<[u8]>>(&self, data: &[T]) -> Result<Vec<Vec<u8>>, CodecError> {
        let mut parity = vec![Vec::new(); self.parity];
        self.encode_into(data, &mut parity)?;
        Ok(parity)
    }

    /// Encodes parity into caller-provided buffers, the zero-allocation
    /// variant of [`Self::encode`].
    ///
    /// `parity` must hold exactly `parity_shards()` vectors; each is
    /// cleared and resized to the shard length, so buffers reused across
    /// calls reach a steady state where no heap allocation happens at all.
    /// Output contents are identical to [`Self::encode`].
    ///
    /// # Errors
    ///
    /// * [`CodecError::WrongShardCount`] — wrong number of data shards or
    ///   parity buffers.
    /// * [`CodecError::UnevenShards`] — shards of differing lengths.
    /// * [`CodecError::EmptyShards`] — zero-length shards.
    pub fn encode_into<T: AsRef<[u8]>>(
        &self,
        data: &[T],
        parity: &mut [Vec<u8>],
    ) -> Result<(), CodecError> {
        if data.len() != self.data {
            return Err(CodecError::WrongShardCount {
                expected: self.data,
                actual: data.len(),
            });
        }
        if parity.len() != self.parity {
            return Err(CodecError::WrongShardCount {
                expected: self.parity,
                actual: parity.len(),
            });
        }
        let len = self.check_shards(data)?;
        for (p, out) in parity.iter_mut().enumerate() {
            // The row kernel overwrites every byte, so the buffer only
            // needs the right length — no re-zeroing of reused capacity.
            out.resize(len, 0);
            self.encode_row_into(p, data, out);
        }
        Ok(())
    }

    /// Computes parity row `p` into `out`, overwriting it (length checked
    /// by the caller; `out` need not be zeroed).
    fn encode_row_into<T: AsRef<[u8]>>(&self, p: usize, data: &[T], out: &mut [u8]) {
        // One register-resident pass over the destination for the whole
        // row; the stack array keeps the source-ref gather allocation-free
        // for every realistic stripe width.
        let row = &self.parity_kernels[p * self.data..(p + 1) * self.data];
        if self.data <= MAX_FUSED {
            let mut srcs: [&[u8]; MAX_FUSED] = [&[]; MAX_FUSED];
            for (slot, shard) in srcs.iter_mut().zip(data) {
                *slot = shard.as_ref();
            }
            return gf256::mul_row_slice(row, &srcs[..self.data], out);
        }
        row[0].mul_slice(out, data[0].as_ref());
        for (table, shard) in row[1..].iter().zip(&data[1..]) {
            table.mul_slice_xor(out, shard.as_ref());
        }
    }

    /// Verifies that the given full shard set (data followed by parity) is
    /// consistent.
    ///
    /// # Errors
    ///
    /// Propagates shape errors like [`CodecError::WrongShardCount`]; returns
    /// `Ok(false)` if shapes are fine but parity does not match.
    pub fn verify<T: AsRef<[u8]>>(&self, shards: &[T]) -> Result<bool, CodecError> {
        if shards.len() != self.total_shards() {
            return Err(CodecError::WrongShardCount {
                expected: self.total_shards(),
                actual: shards.len(),
            });
        }
        self.check_shards(shards)?;
        let recomputed = self.encode(&shards[..self.data])?;
        Ok(recomputed
            .iter()
            .zip(&shards[self.data..])
            .all(|(a, b)| a.as_slice() == b.as_ref()))
    }

    /// Reconstructs every missing shard (`None` entries) in place.
    ///
    /// `shards` must hold `total_shards()` entries — data shards first,
    /// parity after — with `None` marking lost shards. On success all
    /// entries are `Some` and hold consistent contents.
    ///
    /// # Errors
    ///
    /// * [`CodecError::WrongShardCount`] — wrong number of entries.
    /// * [`CodecError::TooManyMissing`] — more than `parity_shards()`
    ///   entries are `None`.
    /// * [`CodecError::UnevenShards`] / [`CodecError::EmptyShards`] — the
    ///   surviving shards disagree on length or are empty.
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), CodecError> {
        if shards.len() != self.total_shards() {
            return Err(CodecError::WrongShardCount {
                expected: self.total_shards(),
                actual: shards.len(),
            });
        }
        let missing: Vec<usize> = shards
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.is_none().then_some(i))
            .collect();
        if missing.is_empty() {
            return Ok(());
        }
        if missing.len() > self.parity {
            return Err(CodecError::TooManyMissing {
                missing: missing.len(),
                parity: self.parity,
            });
        }
        let present: Vec<usize> = shards
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.is_some().then_some(i))
            .collect();
        let survivors: Vec<&Vec<u8>> = present
            .iter()
            .take(self.data)
            .map(|&i| shards[i].as_ref().expect("present index"))
            .collect();
        let len = self.check_shards(&survivors)?;

        // Recover original data shards for any that are missing, through
        // the per-pattern decode plan: the inverted survivor matrix is
        // cached as fused multiply kernels, so repeated degraded reads of
        // one erasure pattern replay pure `mul_row_slice` passes instead
        // of re-inverting and rebuilding per-coefficient tables. Row
        // buffers are allocated up front (one block, outside the decode
        // loop) and moved into place afterwards — never cloned.
        let plan = self.decode_plan(&present);
        let mut recovered: Vec<Vec<u8>> =
            plan.data_missing.iter().map(|_| vec![0u8; len]).collect();
        if self.data <= MAX_FUSED {
            let mut srcs: [&[u8]; MAX_FUSED] = [&[]; MAX_FUSED];
            for (slot, shard) in srcs.iter_mut().zip(&survivors) {
                *slot = shard.as_slice();
            }
            for (row, out) in recovered.iter_mut().enumerate() {
                gf256::mul_row_slice(
                    &plan.kernels[row * self.data..(row + 1) * self.data],
                    &srcs[..self.data],
                    out,
                );
            }
        } else {
            for (row, out) in recovered.iter_mut().enumerate() {
                let kernels = &plan.kernels[row * self.data..(row + 1) * self.data];
                kernels[0].mul_slice(out, survivors[0]);
                for (table, shard) in kernels[1..].iter().zip(&survivors[1..]) {
                    table.mul_slice_xor(out, shard);
                }
            }
        }
        for (&i, buf) in plan.data_missing.iter().zip(recovered) {
            shards[i] = Some(buf);
        }

        // With all data shards present, re-encode only the missing parity
        // rows, straight into freshly owned buffers that are moved in.
        let parity_missing: Vec<usize> = missing
            .iter()
            .copied()
            .filter(|&i| i >= self.data)
            .collect();
        if !parity_missing.is_empty() {
            let mut rebuilt: Vec<Vec<u8>> = parity_missing.iter().map(|_| vec![0u8; len]).collect();
            {
                let data_refs: Vec<&[u8]> = (0..self.data)
                    .map(|i| shards[i].as_deref().expect("data recovered above"))
                    .collect();
                for (&i, out) in parity_missing.iter().zip(rebuilt.iter_mut()) {
                    self.encode_row_into(i - self.data, &data_refs, out);
                }
            }
            for (&i, buf) in parity_missing.iter().zip(rebuilt) {
                shards[i] = Some(buf);
            }
        }
        Ok(())
    }

    /// The decode plan for one erasure pattern, from the cache when the
    /// pattern was seen before. `present` is the ascending list of
    /// surviving shard indices (at least `data` of them — the caller's
    /// too-many-missing check already ruled the rest out). The cache key
    /// is the bitmask of the first `data` survivors: every present data
    /// index sorts ahead of the parity ones, so that prefix determines
    /// both the inverted matrix and the set of missing data shards.
    fn decode_plan(&self, present: &[usize]) -> Arc<DecodePlan> {
        let key = (self.total_shards() <= 64).then(|| {
            present
                .iter()
                .take(self.data)
                .fold(0u64, |mask, &i| mask | (1 << i))
        });
        if let Some(k) = key {
            if let Some(plan) = self
                .decode_cache
                .plans
                .lock()
                .expect("decode cache lock")
                .get(&k)
            {
                self.decode_cache.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(plan);
            }
        }
        self.decode_cache.misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(self.build_decode_plan(present));
        if let Some(k) = key {
            self.decode_cache
                .plans
                .lock()
                .expect("decode cache lock")
                .insert(k, Arc::clone(&plan));
        }
        plan
    }

    /// Inverts the survivor rows of the encode matrix and bakes the
    /// result into fused multiply kernels (the slow path the cache
    /// amortizes — one inversion plus `missing × data` table builds).
    fn build_decode_plan(&self, present: &[usize]) -> DecodePlan {
        // Rows of the encode matrix for the first `data` surviving shards
        // form an invertible matrix; inverting it maps survivors back to
        // the original data shards.
        let survivor_rows = self
            .encode_matrix
            .select_rows(&present[..self.data.min(present.len())]);
        let decode = survivor_rows
            .inverse()
            .expect("any data-many rows of an RS encode matrix are independent");
        let data_missing: Vec<usize> = (0..self.data)
            .filter(|i| present.binary_search(i).is_err())
            .collect();
        let kernels = data_missing
            .iter()
            .flat_map(|&dm| (0..self.data).map(move |j| (dm, j)))
            .map(|(dm, j)| gf256::MulTable::new(decode.get(dm, j)))
            .collect();
        DecodePlan {
            data_missing,
            kernels,
        }
    }

    /// Number of distinct erasure patterns currently cached (test and
    /// diagnostics hook; the cache is otherwise invisible).
    pub fn cached_decode_patterns(&self) -> usize {
        self.decode_cache.plans.lock().map(|m| m.len()).unwrap_or(0)
    }

    /// Decode-plan cache lookup counters as `(hits, misses)`. A miss is
    /// any lookup that built a plan, so `hits / (hits + misses)` is the
    /// warm-path fraction perf baselines report.
    pub fn decode_cache_stats(&self) -> (u64, u64) {
        (
            self.decode_cache.hits.load(Ordering::Relaxed),
            self.decode_cache.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_data(m: usize, len: usize) -> Vec<Vec<u8>> {
        (0..m)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 131 + j * 17 + 7) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn encode_verify_roundtrip() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data = sample_data(4, 64);
        let parity = rs.encode(&data).unwrap();
        assert_eq!(parity.len(), 2);
        let mut all: Vec<Vec<u8>> = data.clone();
        all.extend(parity);
        assert!(rs.verify(&all).unwrap());
        // Corrupt one byte and verification fails.
        all[5][3] ^= 0xff;
        assert!(!rs.verify(&all).unwrap());
    }

    #[test]
    fn zero_parity_is_noop_code() {
        let rs = ReedSolomon::new(3, 0).unwrap();
        let data = sample_data(3, 16);
        assert!(rs.encode(&data).unwrap().is_empty());
        let mut shards: Vec<Option<Vec<u8>>> = data.into_iter().map(Some).collect();
        rs.reconstruct(&mut shards).unwrap();
        // A missing shard is unrecoverable with zero parity.
        shards[0] = None;
        let err = rs.reconstruct(&mut shards).unwrap_err();
        assert!(matches!(err, CodecError::TooManyMissing { .. }));
    }

    #[test]
    fn reconstruct_every_single_loss_pattern() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        let data = sample_data(3, 32);
        let parity = rs.encode(&data).unwrap();
        let full: Vec<Vec<u8>> = data.iter().cloned().chain(parity).collect();
        for lost in 0..5 {
            let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            shards[lost] = None;
            rs.reconstruct(&mut shards).unwrap();
            for (i, s) in shards.iter().enumerate() {
                assert_eq!(
                    s.as_ref().unwrap(),
                    &full[i],
                    "shard {i} after losing {lost}"
                );
            }
        }
    }

    #[test]
    fn reconstruct_every_double_loss_pattern() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        let data = sample_data(3, 32);
        let parity = rs.encode(&data).unwrap();
        let full: Vec<Vec<u8>> = data.iter().cloned().chain(parity).collect();
        for a in 0..5 {
            for b in (a + 1)..5 {
                let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
                shards[a] = None;
                shards[b] = None;
                rs.reconstruct(&mut shards).unwrap();
                for (i, s) in shards.iter().enumerate() {
                    assert_eq!(s.as_ref().unwrap(), &full[i], "lost ({a},{b}), shard {i}");
                }
            }
        }
    }

    #[test]
    fn too_many_missing_is_an_error() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        let data = sample_data(3, 8);
        let parity = rs.encode(&data).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = data.into_iter().chain(parity).map(Some).collect();
        shards[0] = None;
        shards[1] = None;
        shards[2] = None;
        assert_eq!(
            rs.reconstruct(&mut shards).unwrap_err(),
            CodecError::TooManyMissing {
                missing: 3,
                parity: 2
            }
        );
    }

    #[test]
    fn geometry_errors() {
        assert!(matches!(
            ReedSolomon::new(0, 2),
            Err(CodecError::InvalidShardCounts { .. })
        ));
        assert!(matches!(
            ReedSolomon::new(255, 2),
            Err(CodecError::InvalidShardCounts { .. })
        ));
        assert!(ReedSolomon::new(254, 2).is_ok());
    }

    #[test]
    fn shape_errors() {
        let rs = ReedSolomon::new(2, 1).unwrap();
        assert!(matches!(
            rs.encode(&sample_data(3, 8)),
            Err(CodecError::WrongShardCount {
                expected: 2,
                actual: 3
            })
        ));
        let uneven = vec![vec![0u8; 8], vec![0u8; 9]];
        assert_eq!(rs.encode(&uneven).unwrap_err(), CodecError::UnevenShards);
        let empty: Vec<Vec<u8>> = vec![vec![], vec![]];
        assert_eq!(rs.encode(&empty).unwrap_err(), CodecError::EmptyShards);
    }

    #[test]
    fn parity_coefficient_matches_encode() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        // Encode unit-impulse data shards and check that parity equals the
        // coefficient.
        for d in 0..3 {
            let mut data = vec![vec![0u8; 1]; 3];
            data[d][0] = 1;
            let parity = rs.encode(&data).unwrap();
            for (p, row) in parity.iter().enumerate().take(2) {
                assert_eq!(row[0], rs.parity_coefficient(p, d));
            }
        }
    }

    #[test]
    fn encode_into_matches_encode_and_reuses_buffers() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data = sample_data(4, 33); // odd length exercises the word tail
        let expect = rs.encode(&data).unwrap();

        // Dirty, differently-sized reusable buffers converge to the same
        // output as `encode` without reallocating once capacity suffices.
        let mut parity = vec![vec![0xffu8; 64], vec![0x11u8; 7]];
        rs.encode_into(&data, &mut parity).unwrap();
        assert_eq!(parity, expect);

        let caps: Vec<usize> = parity.iter().map(Vec::capacity).collect();
        rs.encode_into(&data, &mut parity).unwrap();
        assert_eq!(parity, expect);
        let caps_after: Vec<usize> = parity.iter().map(Vec::capacity).collect();
        assert_eq!(caps, caps_after, "steady state must not reallocate");
    }

    #[test]
    fn encode_into_checks_parity_buffer_count() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        let data = sample_data(3, 8);
        let mut parity = vec![Vec::new(); 3];
        assert!(matches!(
            rs.encode_into(&data, &mut parity),
            Err(CodecError::WrongShardCount {
                expected: 2,
                actual: 3
            })
        ));
    }

    #[test]
    fn decode_plans_are_cached_per_erasure_pattern() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data = sample_data(4, 48);
        let parity = rs.encode(&data).unwrap();
        let full: Vec<Vec<u8>> = data.iter().cloned().chain(parity).collect();
        assert_eq!(rs.cached_decode_patterns(), 0);

        let lose = |lost: &[usize]| {
            let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            for &i in lost {
                shards[i] = None;
            }
            rs.reconstruct(&mut shards).unwrap();
            for (i, s) in shards.iter().enumerate() {
                assert_eq!(s.as_ref().unwrap(), &full[i], "lost {lost:?}, shard {i}");
            }
        };
        lose(&[1]);
        lose(&[1]); // same pattern: replayed from the cache
        assert_eq!(rs.cached_decode_patterns(), 1);
        lose(&[4]);
        lose(&[5]); // same survivor prefix {0,1,2,3} ⇒ same plan
        assert_eq!(rs.cached_decode_patterns(), 2);
        lose(&[0, 2]); // a new pattern pays one more inversion
        assert_eq!(rs.cached_decode_patterns(), 3);
        // Five reconstructs: three built plans, two replayed cached ones.
        assert_eq!(rs.decode_cache_stats(), (2, 3));

        // A clone starts cold (plans are derived state, not identity).
        let other = rs.clone();
        assert_eq!(other.cached_decode_patterns(), 0);
        assert_eq!(other.decode_cache_stats(), (0, 0));
        lose(&[0, 2]);
        assert_eq!(rs.cached_decode_patterns(), 3);
    }

    /// The per-byte reference decode: invert the survivor rows and apply
    /// the coefficients with scalar [`gf256::mul`], one byte at a time —
    /// no tables, no fused kernels, no caching.
    fn per_byte_reference(rs: &ReedSolomon, holes: &[Option<Vec<u8>>]) -> Vec<Option<Vec<u8>>> {
        let present: Vec<usize> = holes
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.is_some().then_some(i))
            .collect();
        let survivors: Vec<&Vec<u8>> = present
            .iter()
            .take(rs.data)
            .map(|&i| holes[i].as_ref().unwrap())
            .collect();
        let len = survivors.first().map_or(0, |s| s.len());
        let decode = rs
            .encode_matrix
            .select_rows(&present[..rs.data.min(present.len())])
            .inverse()
            .unwrap();
        let mut out: Vec<Option<Vec<u8>>> = holes.to_vec();
        for dm in (0..rs.data).filter(|i| !present.contains(i)) {
            let mut buf = vec![0u8; len];
            for (b, slot) in buf.iter_mut().enumerate() {
                for (j, shard) in survivors.iter().enumerate() {
                    *slot ^= gf256::mul(decode.get(dm, j), shard[b]);
                }
            }
            out[dm] = Some(buf);
        }
        for p in 0..rs.parity {
            if out[rs.data + p].is_some() {
                continue;
            }
            let mut buf = vec![0u8; len];
            for (b, slot) in buf.iter_mut().enumerate() {
                for d in 0..rs.data {
                    let byte = out[d].as_ref().unwrap()[b];
                    *slot ^= gf256::mul(rs.encode_matrix.get(rs.data + p, d), byte);
                }
            }
            out[rs.data + p] = Some(buf);
        }
        out
    }

    #[test]
    fn errors_display_cleanly() {
        let e = CodecError::TooManyMissing {
            missing: 3,
            parity: 2,
        };
        assert_eq!(
            e.to_string(),
            "3 shards missing but only 2 parity shards available"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn encode_into_matches_encode_for_random_geometry(
            m in 1usize..6,
            k in 0usize..4,
            len in 1usize..64,
            seed: u64,
        ) {
            let rs = ReedSolomon::new(m, k).unwrap();
            let data: Vec<Vec<u8>> = (0..m)
                .map(|i| {
                    (0..len)
                        .map(|j| (seed
                            .wrapping_mul(2862933555777941757)
                            .wrapping_add((i * 733 + j) as u64) >> 29) as u8)
                        .collect()
                })
                .collect();
            let expect = rs.encode(&data).unwrap();
            let mut parity = vec![vec![0xc3u8; (seed % 80) as usize]; k];
            rs.encode_into(&data, &mut parity).unwrap();
            prop_assert_eq!(parity, expect);
        }

        #[test]
        fn random_reconstruct_roundtrip(
            m in 1usize..6,
            k in 0usize..4,
            len in 1usize..64,
            seed: u64,
        ) {
            let rs = ReedSolomon::new(m, k).unwrap();
            let data: Vec<Vec<u8>> = (0..m)
                .map(|i| {
                    (0..len)
                        .map(|j| (seed
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add((i * 1009 + j) as u64) >> 33) as u8)
                        .collect()
                })
                .collect();
            let parity = rs.encode(&data).unwrap();
            let full: Vec<Vec<u8>> = data.iter().cloned().chain(parity).collect();

            // Choose up to k losses deterministically from the seed.
            let total = m + k;
            let losses = (seed as usize) % (k + 1);
            let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            let mut lost = Vec::new();
            let mut idx = (seed as usize) % total;
            while lost.len() < losses {
                if !lost.contains(&idx) {
                    lost.push(idx);
                    shards[idx] = None;
                }
                // Step by 1: always visits every index, so the loop
                // terminates for any `total`.
                idx = (idx + 1) % total;
            }
            rs.reconstruct(&mut shards).unwrap();
            for (i, s) in shards.iter().enumerate() {
                prop_assert_eq!(s.as_ref().unwrap(), &full[i]);
            }
        }

        /// Kernel equivalence: the cached-plan `mul_row_slice` decode
        /// produces byte-identical output to the scalar per-byte
        /// reference for every random geometry and erasure pattern —
        /// on both a cold cache and a warm replay of the same pattern.
        #[test]
        fn cached_decode_matches_per_byte_reference(
            m in 1usize..8,
            k in 1usize..4,
            len in 1usize..96,
            seed: u64,
        ) {
            let rs = ReedSolomon::new(m, k).unwrap();
            let data: Vec<Vec<u8>> = (0..m)
                .map(|i| {
                    (0..len)
                        .map(|j| (seed
                            .wrapping_mul(0x9E3779B97F4A7C15)
                            .wrapping_add((i * 8191 + j) as u64) >> 31) as u8)
                        .collect()
                })
                .collect();
            let parity = rs.encode(&data).unwrap();
            let full: Vec<Vec<u8>> = data.iter().cloned().chain(parity).collect();

            // Knock out 1..=k shards, deterministically from the seed.
            let total = m + k;
            let losses = 1 + (seed as usize) % k;
            let mut holes: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            let mut idx = (seed as usize >> 8) % total;
            let mut lost = 0usize;
            while lost < losses {
                if holes[idx].is_some() {
                    holes[idx] = None;
                    lost += 1;
                }
                idx = (idx + 1) % total;
            }

            let reference = per_byte_reference(&rs, &holes);
            for _round in 0..2 {
                // Round 0 builds the plan, round 1 replays it cached.
                let mut shards = holes.clone();
                rs.reconstruct(&mut shards).unwrap();
                for (i, (got, want)) in shards.iter().zip(&reference).enumerate() {
                    prop_assert_eq!(
                        got.as_ref().unwrap(),
                        want.as_ref().unwrap(),
                        "shard {} diverged from the per-byte reference",
                        i
                    );
                }
            }
            prop_assert!(rs.cached_decode_patterns() <= 1);
        }
    }
}
