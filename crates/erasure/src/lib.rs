#![warn(missing_docs)]
//! Reed–Solomon erasure coding for the Reo flash cache, built from scratch.
//!
//! Reo protects "hot clean" cache objects with parity chunks inside each
//! stripe (Section IV-C of the paper) and reconstructs corrupted chunks from
//! any `m` surviving fragments. This crate implements everything that
//! requires:
//!
//! * [`gf256`] — arithmetic in GF(2^8) with the AES/RS-standard reducing
//!   polynomial `x^8 + x^4 + x^3 + x^2 + 1` (0x11d).
//! * [`Matrix`] — dense matrices over GF(2^8) with Gauss–Jordan inversion,
//!   plus Vandermonde and Cauchy constructions.
//! * [`ReedSolomon`] — an `m` data + `k` parity systematic code: encode,
//!   verify, and reconstruct any ≤ `k` missing shards.
//! * [`delta`] — the two parity-update strategies the paper discusses
//!   (direct re-encoding vs delta patching) and the read-cost model Reo uses
//!   to pick whichever incurs fewer disk reads.
//!
//! # Examples
//!
//! ```
//! use reo_erasure::ReedSolomon;
//!
//! let rs = ReedSolomon::new(3, 2)?;
//! let data: Vec<Vec<u8>> = vec![vec![1, 2], vec![3, 4], vec![5, 6]];
//! let mut shards: Vec<Option<Vec<u8>>> = data.iter().cloned().map(Some).collect();
//! shards.extend(rs.encode(&data)?.into_iter().map(Some));
//!
//! // Lose any two shards...
//! shards[0] = None;
//! shards[3] = None;
//! // ...and get them back.
//! let rs2 = ReedSolomon::new(3, 2)?;
//! rs2.reconstruct(&mut shards)?;
//! assert_eq!(shards[0].as_deref(), Some(&[1u8, 2][..]));
//! # Ok::<(), reo_erasure::CodecError>(())
//! ```

pub mod delta;
pub mod gf256;
mod matrix;
mod rs;

pub use matrix::Matrix;
pub use rs::{CodecError, ReedSolomon};
