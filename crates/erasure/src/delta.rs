//! Parity updating strategies: direct re-encoding vs delta patching.
//!
//! Section II-B of the Reo paper describes the write-amplification problem
//! of Reed–Solomon parity maintenance. When one data chunk of a stripe is
//! overwritten there are two ways to bring the parity chunks up to date:
//!
//! * **Direct parity-updating** — read all *other* data chunks of the
//!   stripe and re-encode the parity from scratch. Costs `m - 1` chunk
//!   reads (the updated chunk is already in hand).
//! * **Delta parity-updating** — read the *old* content of the updated
//!   chunk and the old parity chunks; compute
//!   `delta = old_data XOR new_data`, then
//!   `new_parity[p] = old_parity[p] XOR coeff(p, d) * delta`.
//!   Costs `1 + k` chunk reads.
//!
//! The paper chooses "the encoding method that incurs the least disk
//! reads"; [`cheapest_strategy`] encodes exactly that decision rule.

use crate::rs::{CodecError, ReedSolomon};

/// Which parity-update strategy to use for an in-place chunk overwrite.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UpdateStrategy {
    /// Re-encode parity from all data chunks (`m - 1` extra reads).
    Direct,
    /// Patch parity using the old data and old parity (`1 + k` extra reads).
    Delta,
}

/// Number of chunk reads needed to update parity via the given strategy,
/// for a stripe with `m` data chunks and `k` parity chunks.
///
/// # Examples
///
/// ```
/// use reo_erasure::delta::{read_cost, UpdateStrategy};
///
/// // Wide stripe, single parity: delta wins.
/// assert!(read_cost(UpdateStrategy::Delta, 8, 1) < read_cost(UpdateStrategy::Direct, 8, 1));
/// // Narrow stripe, heavy parity: direct wins.
/// assert!(read_cost(UpdateStrategy::Direct, 2, 3) < read_cost(UpdateStrategy::Delta, 2, 3));
/// ```
pub fn read_cost(strategy: UpdateStrategy, m: usize, k: usize) -> usize {
    match strategy {
        UpdateStrategy::Direct => m.saturating_sub(1),
        UpdateStrategy::Delta => 1 + k,
    }
}

/// The strategy with the fewest chunk reads for an `m` data / `k` parity
/// stripe, breaking ties in favour of [`UpdateStrategy::Delta`] (it also
/// touches fewer devices).
pub fn cheapest_strategy(m: usize, k: usize) -> UpdateStrategy {
    if read_cost(UpdateStrategy::Delta, m, k) <= read_cost(UpdateStrategy::Direct, m, k) {
        UpdateStrategy::Delta
    } else {
        UpdateStrategy::Direct
    }
}

/// Applies a delta parity update for an overwrite of data shard `d`.
///
/// Given the old and new contents of the updated data shard and the old
/// parity shards, patches each parity shard in place:
/// `parity[p] ^= coeff(p, d) * (old_data XOR new_data)`.
///
/// # Errors
///
/// * [`CodecError::WrongShardCount`] — `parity` does not hold exactly
///   `rs.parity_shards()` shards.
/// * [`CodecError::UnevenShards`] — `old_data`, `new_data`, and parity
///   shards do not all share one length.
/// * [`CodecError::EmptyShards`] — zero-length shards.
///
/// # Panics
///
/// Panics if `d >= rs.data_shards()`.
///
/// # Examples
///
/// ```
/// use reo_erasure::{delta, ReedSolomon};
///
/// let rs = ReedSolomon::new(3, 2)?;
/// let mut data = vec![vec![1u8, 1], vec![2, 2], vec![3, 3]];
/// let mut parity = rs.encode(&data)?;
///
/// let old = data[1].clone();
/// data[1] = vec![9, 9];
/// delta::apply_delta_update(&rs, 1, &old, &data[1], &mut parity)?;
///
/// assert_eq!(parity, rs.encode(&data)?);
/// # Ok::<(), reo_erasure::CodecError>(())
/// ```
pub fn apply_delta_update(
    rs: &ReedSolomon,
    d: usize,
    old_data: &[u8],
    new_data: &[u8],
    parity: &mut [Vec<u8>],
) -> Result<(), CodecError> {
    assert!(d < rs.data_shards(), "data shard index out of range");
    if parity.len() != rs.parity_shards() {
        return Err(CodecError::WrongShardCount {
            expected: rs.parity_shards(),
            actual: parity.len(),
        });
    }
    let len = old_data.len();
    if len == 0 {
        return Err(CodecError::EmptyShards);
    }
    if new_data.len() != len || parity.iter().any(|p| p.len() != len) {
        return Err(CodecError::UnevenShards);
    }

    // Fused kernel: the delta XOR and the coefficient multiply happen in
    // one pass per parity shard, with no intermediate delta buffer.
    for (p, shard) in parity.iter_mut().enumerate() {
        rs.parity_kernel(p, d)
            .mul_delta_xor(shard, old_data, new_data);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn delta_update_matches_full_reencode() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let mut data: Vec<Vec<u8>> = (0..4)
            .map(|i| (0..32).map(|j| ((i * 37 + j) % 251) as u8).collect())
            .collect();
        let mut parity = rs.encode(&data).unwrap();

        for d in 0..4 {
            let old = data[d].clone();
            for b in data[d].iter_mut() {
                *b = b.wrapping_add(13);
            }
            apply_delta_update(&rs, d, &old, &data[d], &mut parity).unwrap();
            assert_eq!(
                parity,
                rs.encode(&data).unwrap(),
                "after updating shard {d}"
            );
        }
    }

    #[test]
    fn noop_update_leaves_parity_unchanged() {
        let rs = ReedSolomon::new(3, 1).unwrap();
        let data = vec![vec![5u8; 8], vec![6; 8], vec![7; 8]];
        let mut parity = rs.encode(&data).unwrap();
        let before = parity.clone();
        apply_delta_update(&rs, 0, &data[0], &data[0], &mut parity).unwrap();
        assert_eq!(parity, before);
    }

    #[test]
    fn shape_errors() {
        let rs = ReedSolomon::new(2, 1).unwrap();
        let mut short_parity: Vec<Vec<u8>> = vec![];
        assert!(matches!(
            apply_delta_update(&rs, 0, &[1], &[2], &mut short_parity),
            Err(CodecError::WrongShardCount { .. })
        ));
        let mut parity = vec![vec![0u8; 2]];
        assert_eq!(
            apply_delta_update(&rs, 0, &[1], &[2, 3], &mut parity).unwrap_err(),
            CodecError::UnevenShards
        );
        assert_eq!(
            apply_delta_update(&rs, 0, &[], &[], &mut parity).unwrap_err(),
            CodecError::EmptyShards
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_shard_index_panics() {
        let rs = ReedSolomon::new(2, 1).unwrap();
        let mut parity = vec![vec![0u8; 1]];
        let _ = apply_delta_update(&rs, 5, &[1], &[2], &mut parity);
    }

    #[test]
    fn cost_model_matches_paper_rule() {
        // Wide stripes favour delta; k+1 < m-1.
        assert_eq!(cheapest_strategy(8, 1), UpdateStrategy::Delta);
        assert_eq!(cheapest_strategy(8, 2), UpdateStrategy::Delta);
        // Narrow stripes favour direct.
        assert_eq!(cheapest_strategy(2, 2), UpdateStrategy::Direct);
        // Tie (m-1 == k+1) goes to delta.
        assert_eq!(cheapest_strategy(4, 2), UpdateStrategy::Delta);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn random_delta_updates_stay_consistent(
            seed: u64,
            m in 2usize..6,
            k in 1usize..4,
            updates in 1usize..8,
        ) {
            let rs = ReedSolomon::new(m, k).unwrap();
            let len = 24usize;
            let mut state = seed;
            let mut next = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) as u8
            };
            let mut data: Vec<Vec<u8>> = (0..m)
                .map(|_| (0..len).map(|_| next()).collect())
                .collect();
            let mut parity = rs.encode(&data).unwrap();
            for _ in 0..updates {
                let d = (next() as usize) % m;
                let old = data[d].clone();
                data[d] = (0..len).map(|_| next()).collect();
                apply_delta_update(&rs, d, &old, &data[d], &mut parity).unwrap();
            }
            prop_assert_eq!(parity, rs.encode(&data).unwrap());
        }
    }
}
