//! Arithmetic in the Galois field GF(2^8).
//!
//! Elements are bytes; addition is XOR; multiplication is polynomial
//! multiplication modulo the primitive polynomial
//! `x^8 + x^4 + x^3 + x^2 + 1` (0x11d), the same field used by standard
//! Reed–Solomon storage codes. Multiplication and division are table-driven
//! (log/exp tables over the generator 2), built once at first use.

/// The reducing polynomial for the field, sans the x^8 term.
const POLY: u16 = 0x11d;

/// Log/antilog tables for GF(2^8) with generator 2.
struct Tables {
    /// `exp[i] = 2^i`, doubled in length so products of logs need no mod.
    exp: [u8; 512],
    /// `log[x]` for x in 1..=255; `log[0]` is unused.
    log: [u16; 256],
}

fn tables() -> &'static Tables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u16; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().take(255).enumerate() {
            *e = x as u8;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= POLY;
            }
        }
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

/// Adds two field elements (XOR).
///
/// # Examples
///
/// ```
/// assert_eq!(reo_erasure::gf256::add(0x53, 0xca), 0x99);
/// // Addition is its own inverse.
/// assert_eq!(reo_erasure::gf256::add(0x99, 0xca), 0x53);
/// ```
#[inline]
pub const fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Subtracts two field elements (identical to [`add`] in GF(2^8)).
#[inline]
pub const fn sub(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplies two field elements.
///
/// # Examples
///
/// ```
/// use reo_erasure::gf256;
/// assert_eq!(gf256::mul(0, 0xff), 0);
/// assert_eq!(gf256::mul(1, 0xff), 0xff);
/// ```
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[(t.log[a as usize] + t.log[b as usize]) as usize]
}

/// Divides `a` by `b`.
///
/// # Panics
///
/// Panics if `b` is zero.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "division by zero in GF(256)");
    if a == 0 {
        return 0;
    }
    let t = tables();
    t.exp[(t.log[a as usize] + 255 - t.log[b as usize]) as usize]
}

/// The multiplicative inverse of `a`.
///
/// # Panics
///
/// Panics if `a` is zero (zero has no inverse).
#[inline]
pub fn inv(a: u8) -> u8 {
    div(1, a)
}

/// Raises `a` to the power `n`.
pub fn pow(a: u8, mut n: u32) -> u8 {
    if n == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    let t = tables();
    n %= 255;
    let l = (t.log[a as usize] as u32 * n) % 255;
    t.exp[l as usize]
}

/// `2^i` in the field — the generator raised to `i`.
#[inline]
pub fn exp2(i: u32) -> u8 {
    tables().exp[(i % 255) as usize]
}

/// Multiplies every byte of `dst` by `c` and XORs in `src * c`:
/// `dst[i] ^= c * src[i]`. This is the inner loop of Reed–Solomon encoding.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_acc_slice(dst: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    if c == 0 {
        return;
    }
    if c == 1 {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= s;
        }
        return;
    }
    let t = tables();
    let log_c = t.log[c as usize];
    for (d, s) in dst.iter_mut().zip(src) {
        if *s != 0 {
            *d ^= t.exp[(t.log[*s as usize] + log_c) as usize];
        }
    }
}

/// Multiplies every byte of `buf` by `c` in place.
pub fn mul_slice(buf: &mut [u8], c: u8) {
    if c == 1 {
        return;
    }
    if c == 0 {
        buf.fill(0);
        return;
    }
    let t = tables();
    let log_c = t.log[c as usize];
    for b in buf.iter_mut() {
        if *b != 0 {
            *b = t.exp[(t.log[*b as usize] + log_c) as usize];
        }
    }
}

/// XORs `src` into `dst`: `dst[i] ^= src[i]`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn xor_slice(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= s;
    }
}

/// A precomputed multiply-by-constant table, split into low/high nibbles.
///
/// The classic storage-codec optimization: for a fixed coefficient `c`,
/// `c * x = low[x & 0xf] ^ high[x >> 4]`, replacing two log-table lookups
/// and an addition per byte with two direct 16-entry lookups. Build one
/// per encoding coefficient and reuse it across the whole chunk.
///
/// # Examples
///
/// ```
/// use reo_erasure::gf256::{mul, MulTable};
///
/// let t = MulTable::new(0x1d);
/// for x in [0u8, 1, 7, 255] {
///     assert_eq!(t.mul(x), mul(0x1d, x));
/// }
/// ```
#[derive(Clone, Debug)]
pub struct MulTable {
    low: [u8; 16],
    high: [u8; 16],
}

impl MulTable {
    /// Builds the table for coefficient `c`.
    pub fn new(c: u8) -> Self {
        let mut low = [0u8; 16];
        let mut high = [0u8; 16];
        for i in 0..16u8 {
            low[i as usize] = mul(c, i);
            high[i as usize] = mul(c, i << 4);
        }
        MulTable { low, high }
    }

    /// Multiplies one byte by the table's coefficient.
    #[inline]
    pub fn mul(&self, x: u8) -> u8 {
        self.low[(x & 0x0f) as usize] ^ self.high[(x >> 4) as usize]
    }

    /// `dst[i] ^= c * src[i]` using the precomputed table.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn mul_acc_slice(&self, dst: &mut [u8], src: &[u8]) {
        assert_eq!(dst.len(), src.len(), "slice length mismatch");
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= self.low[(s & 0x0f) as usize] ^ self.high[(s >> 4) as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn add_is_xor() {
        assert_eq!(add(0b1010, 0b0110), 0b1100);
        assert_eq!(sub(0b1100, 0b0110), 0b1010);
    }

    #[test]
    fn mul_identity_and_zero() {
        for a in 0..=255u8 {
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(1, a), a);
            assert_eq!(mul(a, 0), 0);
            assert_eq!(mul(0, a), 0);
        }
    }

    #[test]
    fn mul_matches_schoolbook() {
        // Carry-less multiply mod POLY, bit by bit.
        fn slow_mul(mut a: u8, mut b: u8) -> u8 {
            let mut r: u8 = 0;
            while b != 0 {
                if b & 1 != 0 {
                    r ^= a;
                }
                let hi = a & 0x80 != 0;
                a <<= 1;
                if hi {
                    a ^= (POLY & 0xff) as u8;
                }
                b >>= 1;
            }
            r
        }
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), slow_mul(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a={a}");
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        div(3, 0);
    }

    #[test]
    fn pow_basics() {
        assert_eq!(pow(7, 0), 1);
        assert_eq!(pow(7, 1), 7);
        assert_eq!(pow(7, 2), mul(7, 7));
        assert_eq!(pow(0, 5), 0);
        // Fermat: a^255 = 1 for nonzero a.
        for a in 1..=255u8 {
            assert_eq!(pow(a, 255), 1);
        }
    }

    #[test]
    fn exp2_generates_whole_field() {
        let mut seen = [false; 256];
        for i in 0..255 {
            seen[exp2(i) as usize] = true;
        }
        // 2 is a generator: all 255 nonzero elements appear.
        assert!(seen[1..].iter().all(|&s| s));
        assert!(!seen[0]);
    }

    #[test]
    fn mul_acc_slice_matches_scalar() {
        let src = [1u8, 2, 3, 0, 255];
        let mut dst = [9u8, 8, 7, 6, 5];
        let mut expect = dst;
        for (e, s) in expect.iter_mut().zip(&src) {
            *e ^= mul(*s, 0x1d);
        }
        mul_acc_slice(&mut dst, &src, 0x1d);
        assert_eq!(dst, expect);
    }

    #[test]
    fn mul_slice_special_cases() {
        let mut buf = [3u8, 5, 0, 7];
        let orig = buf;
        mul_slice(&mut buf, 1);
        assert_eq!(buf, orig);
        mul_slice(&mut buf, 0);
        assert_eq!(buf, [0, 0, 0, 0]);
    }

    #[test]
    fn mul_table_matches_scalar_for_all_inputs() {
        for c in [0u8, 1, 2, 0x1d, 0x80, 0xff] {
            let t = MulTable::new(c);
            for x in 0..=255u8 {
                assert_eq!(t.mul(x), mul(c, x), "c={c} x={x}");
            }
        }
    }

    #[test]
    fn mul_table_slice_matches_mul_acc_slice() {
        let src: Vec<u8> = (0..=255u8).collect();
        for c in [0u8, 1, 0x1d, 0xa7] {
            let mut a = vec![0x55u8; 256];
            let mut b = a.clone();
            mul_acc_slice(&mut a, &src, c);
            MulTable::new(c).mul_acc_slice(&mut b, &src);
            assert_eq!(a, b, "c={c}");
        }
    }

    proptest! {
        #[test]
        fn mul_commutes(a: u8, b: u8) {
            prop_assert_eq!(mul(a, b), mul(b, a));
        }

        #[test]
        fn mul_associates(a: u8, b: u8, c: u8) {
            prop_assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
        }

        #[test]
        fn mul_distributes_over_add(a: u8, b: u8, c: u8) {
            prop_assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
        }

        #[test]
        fn div_inverts_mul(a: u8, b in 1u8..=255) {
            prop_assert_eq!(div(mul(a, b), b), a);
        }

        #[test]
        fn pow_adds_exponents(a in 1u8..=255, m in 0u32..300, n in 0u32..300) {
            prop_assert_eq!(mul(pow(a, m), pow(a, n)), pow(a, m + n));
        }
    }
}
