//! Arithmetic in the Galois field GF(2^8).
//!
//! Elements are bytes; addition is XOR; multiplication is polynomial
//! multiplication modulo the primitive polynomial
//! `x^8 + x^4 + x^3 + x^2 + 1` (0x11d), the same field used by standard
//! Reed–Solomon storage codes. Multiplication and division are table-driven
//! (log/exp tables over the generator 2), built once at first use.

/// The reducing polynomial for the field, sans the x^8 term.
const POLY: u16 = 0x11d;

/// Log/antilog tables for GF(2^8) with generator 2.
struct Tables {
    /// `exp[i] = 2^i`, doubled in length so products of logs need no mod.
    exp: [u8; 512],
    /// `log[x]` for x in 1..=255; `log[0]` is unused.
    log: [u16; 256],
}

fn tables() -> &'static Tables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u16; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().take(255).enumerate() {
            *e = x as u8;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= POLY;
            }
        }
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

/// Adds two field elements (XOR).
///
/// # Examples
///
/// ```
/// assert_eq!(reo_erasure::gf256::add(0x53, 0xca), 0x99);
/// // Addition is its own inverse.
/// assert_eq!(reo_erasure::gf256::add(0x99, 0xca), 0x53);
/// ```
#[inline]
pub const fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Subtracts two field elements (identical to [`add`] in GF(2^8)).
#[inline]
pub const fn sub(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplies two field elements.
///
/// # Examples
///
/// ```
/// use reo_erasure::gf256;
/// assert_eq!(gf256::mul(0, 0xff), 0);
/// assert_eq!(gf256::mul(1, 0xff), 0xff);
/// ```
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[(t.log[a as usize] + t.log[b as usize]) as usize]
}

/// Divides `a` by `b`.
///
/// # Panics
///
/// Panics if `b` is zero.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "division by zero in GF(256)");
    if a == 0 {
        return 0;
    }
    let t = tables();
    t.exp[(t.log[a as usize] + 255 - t.log[b as usize]) as usize]
}

/// The multiplicative inverse of `a`.
///
/// # Panics
///
/// Panics if `a` is zero (zero has no inverse).
#[inline]
pub fn inv(a: u8) -> u8 {
    div(1, a)
}

/// Raises `a` to the power `n`.
pub fn pow(a: u8, mut n: u32) -> u8 {
    if n == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    let t = tables();
    n %= 255;
    let l = (t.log[a as usize] as u32 * n) % 255;
    t.exp[l as usize]
}

/// `2^i` in the field — the generator raised to `i`.
#[inline]
pub fn exp2(i: u32) -> u8 {
    tables().exp[(i % 255) as usize]
}

/// Multiplies every byte of `dst` by `c` and XORs in `src * c`:
/// `dst[i] ^= c * src[i]`. This is the inner loop of Reed–Solomon encoding.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_acc_slice(dst: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    if c == 0 {
        return;
    }
    if c == 1 {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= s;
        }
        return;
    }
    let t = tables();
    let log_c = t.log[c as usize];
    for (d, s) in dst.iter_mut().zip(src) {
        if *s != 0 {
            *d ^= t.exp[(t.log[*s as usize] + log_c) as usize];
        }
    }
}

/// Multiplies every byte of `buf` by `c` in place.
pub fn mul_slice(buf: &mut [u8], c: u8) {
    if c == 1 {
        return;
    }
    if c == 0 {
        buf.fill(0);
        return;
    }
    let t = tables();
    let log_c = t.log[c as usize];
    for b in buf.iter_mut() {
        if *b != 0 {
            *b = t.exp[(t.log[*b as usize] + log_c) as usize];
        }
    }
}

/// XORs `src` into `dst`: `dst[i] ^= src[i]`.
///
/// Runs eight bytes at a time through u64 words (the coefficient-1 fast
/// path of the encode kernels), with a byte loop for the tail.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn xor_slice(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    let split = dst.len() - dst.len() % 8;
    let (d_words, d_tail) = dst.split_at_mut(split);
    let (s_words, s_tail) = src.split_at(split);
    for (d, s) in d_words.chunks_exact_mut(8).zip(s_words.chunks_exact(8)) {
        let w = u64::from_ne_bytes(d.try_into().expect("8-byte chunk"))
            ^ u64::from_ne_bytes(s.try_into().expect("8-byte chunk"));
        d.copy_from_slice(&w.to_ne_bytes());
    }
    for (d, s) in d_tail.iter_mut().zip(s_tail) {
        *d ^= s;
    }
}

/// A precomputed multiply-by-constant kernel for a fixed coefficient.
///
/// Two representations are built once per coefficient: the classic split
/// low/high-nibble tables (`c * x = low[x & 0xf] ^ high[x >> 4]`, two
/// 16-entry lookups per byte) used for scalar lookups and slice tails, and
/// the eight per-bit partial products `c * 2^i` that drive a bit-sliced
/// u64 word kernel processing eight bytes per step with no memory lookups.
/// Build one per encoding coefficient (the codec caches them) and reuse it
/// across the whole chunk.
///
/// # Examples
///
/// ```
/// use reo_erasure::gf256::{mul, MulTable};
///
/// let t = MulTable::new(0x1d);
/// for x in [0u8, 1, 7, 255] {
///     assert_eq!(t.mul(x), mul(0x1d, x));
/// }
/// ```
#[derive(Clone, Debug)]
pub struct MulTable {
    low: [u8; 16],
    high: [u8; 16],
    /// `bits[i] = c * 2^i` — the per-bit partial products of the word kernel.
    bits: [u64; 8],
    c: u8,
}

/// `0x01` replicated into every byte lane of a u64.
const LANES: u64 = 0x0101_0101_0101_0101;

impl MulTable {
    /// Builds the table for coefficient `c`.
    pub fn new(c: u8) -> Self {
        let mut low = [0u8; 16];
        let mut high = [0u8; 16];
        let mut bits = [0u64; 8];
        for i in 0..16u8 {
            low[i as usize] = mul(c, i);
            high[i as usize] = mul(c, i << 4);
        }
        for (i, b) in bits.iter_mut().enumerate() {
            *b = mul(c, 1 << i) as u64;
        }
        MulTable { low, high, bits, c }
    }

    /// The coefficient this table multiplies by.
    #[inline]
    pub fn coefficient(&self) -> u8 {
        self.c
    }

    /// Multiplies one byte by the table's coefficient.
    #[inline]
    pub fn mul(&self, x: u8) -> u8 {
        self.low[(x & 0x0f) as usize] ^ self.high[(x >> 4) as usize]
    }

    /// Multiplies all eight byte lanes of a word by `c` at once.
    ///
    /// Bit-sliced: lane byte `x = Σ x_i·2^i`, so `c·x = Σ x_i·(c·2^i)` by
    /// linearity. Masking bit `i` out of every lane leaves bytes that are 0
    /// or 1, and an integer multiply by `c·2^i ≤ 255` then scales each lane
    /// without carrying across lane boundaries, so the XOR of the eight
    /// partial products is the exact field product per lane.
    #[inline]
    fn mul_word(&self, w: u64) -> u64 {
        let mut y = (w & LANES) * self.bits[0];
        y ^= ((w >> 1) & LANES) * self.bits[1];
        y ^= ((w >> 2) & LANES) * self.bits[2];
        y ^= ((w >> 3) & LANES) * self.bits[3];
        y ^= ((w >> 4) & LANES) * self.bits[4];
        y ^= ((w >> 5) & LANES) * self.bits[5];
        y ^= ((w >> 6) & LANES) * self.bits[6];
        y ^= ((w >> 7) & LANES) * self.bits[7];
        y
    }

    /// `dst[i] ^= c * src[i]` — the fused multiply-accumulate encode kernel.
    ///
    /// Coefficient 0 is a no-op and coefficient 1 degrades to [`xor_slice`];
    /// otherwise bytes stream through the word kernel eight at a time with a
    /// nibble-table loop for the tail.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn mul_slice_xor(&self, dst: &mut [u8], src: &[u8]) {
        assert_eq!(dst.len(), src.len(), "slice length mismatch");
        match self.c {
            0 => return,
            1 => return xor_slice(dst, src),
            _ => {}
        }
        let split = dst.len() - dst.len() % 8;
        let (d_words, d_tail) = dst.split_at_mut(split);
        let (s_words, s_tail) = src.split_at(split);
        for (d, s) in d_words.chunks_exact_mut(8).zip(s_words.chunks_exact(8)) {
            let w = u64::from_ne_bytes(d.try_into().expect("8-byte chunk"))
                ^ self.mul_word(u64::from_ne_bytes(s.try_into().expect("8-byte chunk")));
            d.copy_from_slice(&w.to_ne_bytes());
        }
        for (d, s) in d_tail.iter_mut().zip(s_tail) {
            *d ^= self.low[(s & 0x0f) as usize] ^ self.high[(s >> 4) as usize];
        }
    }

    /// `dst[i] = c * src[i]` — overwrite variant of [`Self::mul_slice_xor`].
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn mul_slice(&self, dst: &mut [u8], src: &[u8]) {
        assert_eq!(dst.len(), src.len(), "slice length mismatch");
        match self.c {
            0 => return dst.fill(0),
            1 => return dst.copy_from_slice(src),
            _ => {}
        }
        let split = dst.len() - dst.len() % 8;
        let (d_words, d_tail) = dst.split_at_mut(split);
        let (s_words, s_tail) = src.split_at(split);
        for (d, s) in d_words.chunks_exact_mut(8).zip(s_words.chunks_exact(8)) {
            let w = self.mul_word(u64::from_ne_bytes(s.try_into().expect("8-byte chunk")));
            d.copy_from_slice(&w.to_ne_bytes());
        }
        for (d, s) in d_tail.iter_mut().zip(s_tail) {
            *d = self.low[(s & 0x0f) as usize] ^ self.high[(s >> 4) as usize];
        }
    }

    /// `dst[i] ^= c * (old[i] ^ new[i])` — the fused delta-parity kernel.
    ///
    /// Folds the data delta and the coefficient multiply into one pass so
    /// parity updates need no intermediate delta buffer. On x86-64 with
    /// SSSE3 the body runs the same `PSHUFB` nibble-table kernel as
    /// [`mul_row_slice`]: xor the old and new blocks in-register, two
    /// table shuffles for the coefficient multiply, xor into the loaded
    /// destination — the exact per-byte op count of one encode source.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn mul_delta_xor(&self, dst: &mut [u8], old: &[u8], new: &[u8]) {
        assert_eq!(dst.len(), old.len(), "slice length mismatch");
        assert_eq!(dst.len(), new.len(), "slice length mismatch");
        if self.c == 0 {
            return;
        }
        #[cfg(target_arch = "x86_64")]
        if dst.len() >= 16 && x86::ssse3_available() {
            let blocks = dst.len() / 16;
            // SAFETY: SSSE3 support was just verified, lengths were just
            // verified, and `blocks * 16 <= dst.len() == old.len()`.
            unsafe { x86::mul_delta_blocks_ssse3(self, dst, old, new, blocks) };
            return self.mul_delta_xor_scalar(dst, old, new, blocks * 16);
        }
        self.mul_delta_xor_scalar(dst, old, new, 0)
    }

    /// The portable body of [`Self::mul_delta_xor`], starting at byte
    /// `off` (callers guarantee `off` is a multiple of 8 and ≤
    /// `dst.len()`; the caller already handled `c == 0`).
    fn mul_delta_xor_scalar(&self, dst: &mut [u8], old: &[u8], new: &[u8], mut off: usize) {
        let split = dst.len() - dst.len() % 8;
        while off < split {
            let delta = u64::from_ne_bytes(old[off..off + 8].try_into().expect("8-byte chunk"))
                ^ u64::from_ne_bytes(new[off..off + 8].try_into().expect("8-byte chunk"));
            let w = u64::from_ne_bytes(dst[off..off + 8].try_into().expect("8-byte chunk"))
                ^ if self.c == 1 {
                    delta
                } else {
                    self.mul_word(delta)
                };
            dst[off..off + 8].copy_from_slice(&w.to_ne_bytes());
            off += 8;
        }
        for i in split..dst.len() {
            let delta = old[i] ^ new[i];
            dst[i] ^= self.low[(delta & 0x0f) as usize] ^ self.high[(delta >> 4) as usize];
        }
    }

    /// `dst[i] ^= c * src[i]` using the precomputed table.
    ///
    /// Kept as the historical name; delegates to [`Self::mul_slice_xor`].
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn mul_acc_slice(&self, dst: &mut [u8], src: &[u8]) {
        self.mul_slice_xor(dst, src);
    }
}

/// `dst[i] = Σ_d tables[d] · srcs[d][i]` — one whole parity row, fused.
///
/// The single-source kernels stream the destination through memory once
/// per source; at `m` data shards that is `m` destination reads plus `m`
/// writes per byte of parity. Here the accumulator lives in a register
/// across all sources, so the destination is written exactly once and
/// never read — the memory traffic drops from `2m + m` to `m + 1`
/// slice-passes per row. `dst` is overwritten, so callers don't need to
/// zero it first. Coefficients 0 and 1 short-circuit per word; the
/// sub-word tail uses the nibble tables (which are exact for every
/// coefficient, including 0 and 1).
///
/// On x86-64 with SSSE3 (detected at runtime) the body runs the classic
/// `PSHUFB` nibble-table kernel instead: each 16-byte block needs two
/// table shuffles per source, cutting the per-byte op count roughly 8×
/// versus the bit-sliced word kernel.
///
/// # Panics
///
/// Panics if `tables` and `srcs` have different lengths, if any source's
/// length differs from `dst`, or if `srcs` is empty.
pub fn mul_row_slice(tables: &[MulTable], srcs: &[&[u8]], dst: &mut [u8]) {
    assert_eq!(tables.len(), srcs.len(), "one table per source");
    assert!(!srcs.is_empty(), "a parity row needs at least one source");
    for s in srcs {
        assert_eq!(s.len(), dst.len(), "slice length mismatch");
    }
    #[cfg(target_arch = "x86_64")]
    if tables.len() <= x86::MAX_SOURCES && dst.len() >= 16 && x86::ssse3_available() {
        let blocks = dst.len() / 16;
        // SAFETY: SSSE3 support was just verified, lengths were just
        // verified, and `blocks * 16 <= dst.len() == srcs[d].len()`.
        unsafe { x86::mul_row_blocks_ssse3(tables, srcs, dst, blocks) };
        return mul_row_slice_scalar(tables, srcs, dst, blocks * 16);
    }
    mul_row_slice_scalar(tables, srcs, dst, 0)
}

/// The portable body of [`mul_row_slice`], starting at byte `off`
/// (callers guarantee `off` is a multiple of 8 and ≤ `dst.len()`).
fn mul_row_slice_scalar(tables: &[MulTable], srcs: &[&[u8]], dst: &mut [u8], mut off: usize) {
    // 32-byte blocks with four independent accumulators: the four
    // `mul_word` dependency chains overlap, and each source's `bits`
    // table is loaded once per block instead of once per word.
    let split32 = off + (dst.len() - off) / 32 * 32;
    while off < split32 {
        let mut acc = [0u64; 4];
        for (t, s) in tables.iter().zip(srcs) {
            let block = &s[off..off + 32];
            let mut w = [0u64; 4];
            for (lane, chunk) in w.iter_mut().zip(block.chunks_exact(8)) {
                *lane = u64::from_ne_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            match t.c {
                0 => {}
                1 => {
                    for (a, lane) in acc.iter_mut().zip(w) {
                        *a ^= lane;
                    }
                }
                _ => {
                    for (a, lane) in acc.iter_mut().zip(w) {
                        *a ^= t.mul_word(lane);
                    }
                }
            }
        }
        for (a, chunk) in acc.iter().zip(dst[off..off + 32].chunks_exact_mut(8)) {
            chunk.copy_from_slice(&a.to_ne_bytes());
        }
        off += 32;
    }
    let split = dst.len() - dst.len() % 8;
    while off < split {
        let mut acc = 0u64;
        for (t, s) in tables.iter().zip(srcs) {
            let w = u64::from_ne_bytes(s[off..off + 8].try_into().expect("8-byte chunk"));
            match t.c {
                0 => {}
                1 => acc ^= w,
                _ => acc ^= t.mul_word(w),
            }
        }
        dst[off..off + 8].copy_from_slice(&acc.to_ne_bytes());
        off += 8;
    }
    for i in split..dst.len() {
        let mut b = 0u8;
        for (t, s) in tables.iter().zip(srcs) {
            let x = s[i];
            b ^= t.low[(x & 0x0f) as usize] ^ t.high[(x >> 4) as usize];
        }
        dst[i] = b;
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! Runtime-detected SSSE3 row kernel.
    //!
    //! `PSHUFB` is a 16-lane byte table lookup, and a [`super::MulTable`]'s
    //! `low`/`high` arrays are exactly 16-entry byte tables indexed by a
    //! nibble — so `c·x` for 16 bytes is two shuffles and a handful of
    //! masks. Correctness: `x = (hi << 4) | lo`, so by linearity
    //! `c·x = c·(hi << 4) ⊕ c·lo = high[hi] ⊕ low[lo]`, which is the same
    //! identity the scalar tail loop uses.

    use super::MulTable;
    use core::arch::x86_64::{
        __m128i, _mm_and_si128, _mm_loadu_si128, _mm_set1_epi8, _mm_setzero_si128,
        _mm_shuffle_epi8, _mm_srli_epi64, _mm_storeu_si128, _mm_xor_si128,
    };

    /// Row width the stack-resident shuffle-table cache accommodates.
    pub(super) const MAX_SOURCES: usize = 16;

    /// True when the CPU supports SSSE3 (`std` caches the CPUID probe).
    pub(super) fn ssse3_available() -> bool {
        std::arch::is_x86_feature_detected!("ssse3")
    }

    /// Computes `dst[i] = Σ_d tables[d] · srcs[d][i]` for the first
    /// `blocks * 16` bytes.
    ///
    /// # Safety
    ///
    /// The CPU must support SSSE3, `tables.len() == srcs.len() <=
    /// MAX_SOURCES`, and every source and `dst` must hold at least
    /// `blocks * 16` bytes.
    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn mul_row_blocks_ssse3(
        tables: &[MulTable],
        srcs: &[&[u8]],
        dst: &mut [u8],
        blocks: usize,
    ) {
        let nibble = _mm_set1_epi8(0x0f);
        // Hoist every source's shuffle tables out of the block loop.
        let mut low = [_mm_setzero_si128(); MAX_SOURCES];
        let mut high = [_mm_setzero_si128(); MAX_SOURCES];
        for (i, t) in tables.iter().enumerate() {
            low[i] = _mm_loadu_si128(t.low.as_ptr().cast::<__m128i>());
            high[i] = _mm_loadu_si128(t.high.as_ptr().cast::<__m128i>());
        }
        for b in 0..blocks {
            let off = b * 16;
            let mut acc = _mm_setzero_si128();
            for (i, s) in srcs.iter().enumerate() {
                let x = _mm_loadu_si128(s.as_ptr().add(off).cast::<__m128i>());
                let lo = _mm_and_si128(x, nibble);
                let hi = _mm_and_si128(_mm_srli_epi64::<4>(x), nibble);
                acc = _mm_xor_si128(acc, _mm_shuffle_epi8(low[i], lo));
                acc = _mm_xor_si128(acc, _mm_shuffle_epi8(high[i], hi));
            }
            _mm_storeu_si128(dst.as_mut_ptr().add(off).cast::<__m128i>(), acc);
        }
    }

    /// Computes `dst[i] ^= c * (old[i] ^ new[i])` for the first
    /// `blocks * 16` bytes — the fused delta kernel of
    /// [`MulTable::mul_delta_xor`].
    ///
    /// # Safety
    ///
    /// The CPU must support SSSE3 and `dst`, `old`, and `new` must each
    /// hold at least `blocks * 16` bytes.
    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn mul_delta_blocks_ssse3(
        t: &MulTable,
        dst: &mut [u8],
        old: &[u8],
        new: &[u8],
        blocks: usize,
    ) {
        let nibble = _mm_set1_epi8(0x0f);
        let low = _mm_loadu_si128(t.low.as_ptr().cast::<__m128i>());
        let high = _mm_loadu_si128(t.high.as_ptr().cast::<__m128i>());
        for b in 0..blocks {
            let off = b * 16;
            let delta = _mm_xor_si128(
                _mm_loadu_si128(old.as_ptr().add(off).cast::<__m128i>()),
                _mm_loadu_si128(new.as_ptr().add(off).cast::<__m128i>()),
            );
            let lo = _mm_and_si128(delta, nibble);
            let hi = _mm_and_si128(_mm_srli_epi64::<4>(delta), nibble);
            let prod = _mm_xor_si128(_mm_shuffle_epi8(low, lo), _mm_shuffle_epi8(high, hi));
            let d = _mm_loadu_si128(dst.as_ptr().add(off).cast::<__m128i>());
            _mm_storeu_si128(
                dst.as_mut_ptr().add(off).cast::<__m128i>(),
                _mm_xor_si128(d, prod),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn add_is_xor() {
        assert_eq!(add(0b1010, 0b0110), 0b1100);
        assert_eq!(sub(0b1100, 0b0110), 0b1010);
    }

    #[test]
    fn mul_identity_and_zero() {
        for a in 0..=255u8 {
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(1, a), a);
            assert_eq!(mul(a, 0), 0);
            assert_eq!(mul(0, a), 0);
        }
    }

    #[test]
    fn mul_matches_schoolbook() {
        // Carry-less multiply mod POLY, bit by bit.
        fn slow_mul(mut a: u8, mut b: u8) -> u8 {
            let mut r: u8 = 0;
            while b != 0 {
                if b & 1 != 0 {
                    r ^= a;
                }
                let hi = a & 0x80 != 0;
                a <<= 1;
                if hi {
                    a ^= (POLY & 0xff) as u8;
                }
                b >>= 1;
            }
            r
        }
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), slow_mul(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a={a}");
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        div(3, 0);
    }

    #[test]
    fn pow_basics() {
        assert_eq!(pow(7, 0), 1);
        assert_eq!(pow(7, 1), 7);
        assert_eq!(pow(7, 2), mul(7, 7));
        assert_eq!(pow(0, 5), 0);
        // Fermat: a^255 = 1 for nonzero a.
        for a in 1..=255u8 {
            assert_eq!(pow(a, 255), 1);
        }
    }

    #[test]
    fn exp2_generates_whole_field() {
        let mut seen = [false; 256];
        for i in 0..255 {
            seen[exp2(i) as usize] = true;
        }
        // 2 is a generator: all 255 nonzero elements appear.
        assert!(seen[1..].iter().all(|&s| s));
        assert!(!seen[0]);
    }

    #[test]
    fn mul_acc_slice_matches_scalar() {
        let src = [1u8, 2, 3, 0, 255];
        let mut dst = [9u8, 8, 7, 6, 5];
        let mut expect = dst;
        for (e, s) in expect.iter_mut().zip(&src) {
            *e ^= mul(*s, 0x1d);
        }
        mul_acc_slice(&mut dst, &src, 0x1d);
        assert_eq!(dst, expect);
    }

    #[test]
    fn mul_slice_special_cases() {
        let mut buf = [3u8, 5, 0, 7];
        let orig = buf;
        mul_slice(&mut buf, 1);
        assert_eq!(buf, orig);
        mul_slice(&mut buf, 0);
        assert_eq!(buf, [0, 0, 0, 0]);
    }

    #[test]
    fn mul_table_matches_scalar_for_all_inputs() {
        for c in [0u8, 1, 2, 0x1d, 0x80, 0xff] {
            let t = MulTable::new(c);
            for x in 0..=255u8 {
                assert_eq!(t.mul(x), mul(c, x), "c={c} x={x}");
            }
        }
    }

    #[test]
    fn mul_table_slice_matches_mul_acc_slice() {
        let src: Vec<u8> = (0..=255u8).collect();
        for c in [0u8, 1, 0x1d, 0xa7] {
            let mut a = vec![0x55u8; 256];
            let mut b = a.clone();
            mul_acc_slice(&mut a, &src, c);
            MulTable::new(c).mul_acc_slice(&mut b, &src);
            assert_eq!(a, b, "c={c}");
        }
    }

    #[test]
    fn word_kernels_cover_edge_lengths() {
        // len 0, 1, and non-multiple-of-8 tails must all agree with the
        // reference byte loop.
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 63] {
            let src: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let base: Vec<u8> = (0..len).map(|i| (i * 101 + 3) as u8).collect();
            for c in [0u8, 1, 2, 0x1d, 0xff] {
                let t = MulTable::new(c);
                let expect: Vec<u8> = base.iter().zip(&src).map(|(b, s)| b ^ mul(c, *s)).collect();
                let mut dst = base.clone();
                t.mul_slice_xor(&mut dst, &src);
                assert_eq!(dst, expect, "mul_slice_xor c={c} len={len}");

                let mut dst = base.clone();
                t.mul_slice(&mut dst, &src);
                let scaled: Vec<u8> = src.iter().map(|s| mul(c, *s)).collect();
                assert_eq!(dst, scaled, "mul_slice c={c} len={len}");
            }
        }
    }

    proptest! {
        #[test]
        fn mul_commutes(a: u8, b: u8) {
            prop_assert_eq!(mul(a, b), mul(b, a));
        }

        #[test]
        fn mul_slice_xor_matches_reference_byte_loop(
            c: u8,
            src in proptest::collection::vec(any::<u8>(), 0..70),
            seed: u8,
        ) {
            let base: Vec<u8> = src
                .iter()
                .enumerate()
                .map(|(i, _)| seed.wrapping_add((i * 29) as u8))
                .collect();
            let expect: Vec<u8> = base
                .iter()
                .zip(&src)
                .map(|(b, s)| b ^ mul(c, *s))
                .collect();
            let mut dst = base.clone();
            MulTable::new(c).mul_slice_xor(&mut dst, &src);
            prop_assert_eq!(dst, expect);
        }

        #[test]
        fn mul_slice_matches_reference_byte_loop(
            c: u8,
            src in proptest::collection::vec(any::<u8>(), 0..70),
        ) {
            let expect: Vec<u8> = src.iter().map(|s| mul(c, *s)).collect();
            let mut dst = vec![0xa5u8; src.len()];
            MulTable::new(c).mul_slice(&mut dst, &src);
            prop_assert_eq!(dst, expect);
        }

        #[test]
        fn mul_delta_xor_matches_reference_byte_loop(
            c: u8,
            old in proptest::collection::vec(any::<u8>(), 0..70),
            seed: u8,
        ) {
            let new: Vec<u8> = old
                .iter()
                .enumerate()
                .map(|(i, o)| o.wrapping_mul(17) ^ seed.wrapping_add(i as u8))
                .collect();
            let base: Vec<u8> = old.iter().map(|o| o.wrapping_add(seed)).collect();
            let expect: Vec<u8> = base
                .iter()
                .zip(old.iter().zip(&new))
                .map(|(b, (o, n))| b ^ mul(c, o ^ n))
                .collect();
            let mut dst = base.clone();
            MulTable::new(c).mul_delta_xor(&mut dst, &old, &new);
            prop_assert_eq!(dst, expect);
        }

        #[test]
        fn mul_delta_xor_fused_matches_scalar_kernel(
            c: u8,
            old in proptest::collection::vec(any::<u8>(), 0..200),
            seed: u8,
        ) {
            // Kernel equivalence for the fused delta path: the dispatching
            // entry point (SSSE3 blocks + scalar tail where available)
            // must agree byte-for-byte with the portable scalar body at
            // every length straddling the 16-byte block boundary.
            let new: Vec<u8> = old
                .iter()
                .enumerate()
                .map(|(i, o)| o.rotate_left(3) ^ seed.wrapping_mul(i as u8 | 1))
                .collect();
            let base: Vec<u8> = old.iter().map(|o| o.wrapping_mul(7) ^ seed).collect();
            let t = MulTable::new(c);
            let mut fused = base.clone();
            t.mul_delta_xor(&mut fused, &old, &new);
            let mut scalar = base.clone();
            if c != 0 {
                t.mul_delta_xor_scalar(&mut scalar, &old, &new, 0);
            }
            prop_assert_eq!(fused, scalar);
        }

        #[test]
        fn mul_row_slice_matches_per_source_accumulation(
            m in 1usize..6,
            len in 0usize..70,
            seed: u8,
        ) {
            // Coefficients deliberately include 0 and 1 alongside generic
            // values so the per-word short-circuits are exercised.
            let coeffs: Vec<u8> = (0..m).map(|d| seed.wrapping_mul(d as u8 ^ 0x5b)).collect();
            let tables: Vec<MulTable> = coeffs.iter().map(|&c| MulTable::new(c)).collect();
            let srcs: Vec<Vec<u8>> = (0..m)
                .map(|d| (0..len).map(|i| (i * 13 + d * 31) as u8 ^ seed).collect())
                .collect();
            let mut expect = vec![0u8; len];
            for (c, s) in coeffs.iter().zip(&srcs) {
                for (e, b) in expect.iter_mut().zip(s) {
                    *e ^= mul(*c, *b);
                }
            }
            let refs: Vec<&[u8]> = srcs.iter().map(Vec::as_slice).collect();
            let mut dst = vec![0xc3u8; len]; // dirty: the row kernel overwrites
            mul_row_slice(&tables, &refs, &mut dst);
            prop_assert_eq!(dst, expect);
        }

        #[test]
        fn xor_slice_matches_byte_loop(
            src in proptest::collection::vec(any::<u8>(), 0..70),
        ) {
            let base: Vec<u8> = src.iter().map(|s| s.wrapping_mul(31)).collect();
            let expect: Vec<u8> = base.iter().zip(&src).map(|(b, s)| b ^ s).collect();
            let mut dst = base.clone();
            xor_slice(&mut dst, &src);
            prop_assert_eq!(dst, expect);
        }

        #[test]
        fn mul_associates(a: u8, b: u8, c: u8) {
            prop_assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
        }

        #[test]
        fn mul_distributes_over_add(a: u8, b: u8, c: u8) {
            prop_assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
        }

        #[test]
        fn div_inverts_mul(a: u8, b in 1u8..=255) {
            prop_assert_eq!(div(mul(a, b), b), a);
        }

        #[test]
        fn pow_adds_exponents(a in 1u8..=255, m in 0u32..300, n in 0u32..300) {
            prop_assert_eq!(mul(pow(a, m), pow(a, n)), pow(a, m + n));
        }
    }
}
