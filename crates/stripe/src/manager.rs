//! The stateful stripe manager over a flash array.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use bytes::Bytes;
use reo_erasure::{CodecError, ReedSolomon};
use reo_flashsim::{ChunkHandle, DeviceId, FaultPlan, FlashArray, FlashError, StoredChunk};
use reo_sim::{ByteSize, Layer, SimDuration, SimTime, Tracer};

use crate::layout::{ChunkRole, PlacementPolicy, StripeLayout};
use crate::scheme::RedundancyScheme;

/// Identifier of a stripe within a [`StripeManager`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StripeId(u64);

impl StripeId {
    /// The raw value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for StripeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stripe#{}", self.0)
    }
}

/// Errors from stripe-manager operations.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum StripeError {
    /// A device-level error (full, failed, unknown chunk).
    Flash(FlashError),
    /// An erasure-coding error (should not occur for well-formed stripes).
    Codec(CodecError),
    /// More chunks of a stripe are lost than its redundancy tolerates.
    ObjectLost {
        /// The stripe that cannot be recovered.
        stripe: StripeId,
        /// Chunks lost in that stripe.
        lost: usize,
        /// Failures the stripe's scheme tolerates.
        tolerated: usize,
    },
    /// The layout references a stripe this manager does not know.
    UnknownStripe(StripeId),
    /// Objects must have a non-zero size.
    EmptyObject,
    /// A payload was supplied whose length disagrees with the object size.
    PayloadSizeMismatch {
        /// Declared object size.
        declared: u64,
        /// Supplied payload length.
        payload: u64,
    },
    /// No healthy device remains in the array.
    NoHealthyDevices,
    /// A serialized layout blob failed to parse (journal corruption that
    /// slipped past the record checksum, or a version mismatch).
    CorruptMetadata,
}

impl fmt::Display for StripeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StripeError::Flash(e) => write!(f, "flash error: {e}"),
            StripeError::Codec(e) => write!(f, "erasure codec error: {e}"),
            StripeError::ObjectLost {
                stripe,
                lost,
                tolerated,
            } => write!(
                f,
                "{stripe} lost {lost} chunks but tolerates only {tolerated}"
            ),
            StripeError::UnknownStripe(s) => write!(f, "unknown stripe {s}"),
            StripeError::EmptyObject => write!(f, "objects must be non-empty"),
            StripeError::PayloadSizeMismatch { declared, payload } => write!(
                f,
                "payload is {payload} bytes but object declares {declared}"
            ),
            StripeError::NoHealthyDevices => write!(f, "no healthy device remains"),
            StripeError::CorruptMetadata => write!(f, "serialized layout metadata is corrupt"),
        }
    }
}

impl Error for StripeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StripeError::Flash(e) => Some(e),
            StripeError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FlashError> for StripeError {
    fn from(e: FlashError) -> Self {
        StripeError::Flash(e)
    }
}

impl From<CodecError> for StripeError {
    fn from(e: CodecError) -> Self {
        StripeError::Codec(e)
    }
}

/// How [`StripeManager::overwrite_chunk`] maintained redundancy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ParityUpdate {
    /// No parity to maintain: the chunk (and any replicas) were simply
    /// rewritten.
    Rewrite,
    /// Delta parity-updating: read the old chunk + parity, patch parity
    /// with the XOR delta (Section II-B).
    Delta,
    /// Direct parity-updating: read the sibling data chunks and re-encode
    /// parity from scratch.
    Direct,
}

/// Health of an object's stripes after failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ObjectStatus {
    /// Every chunk intact; reads are served directly.
    Intact,
    /// Some chunks lost but every stripe is reconstructable.
    Degraded,
    /// At least one stripe lost more chunks than its redundancy tolerates.
    Lost,
}

/// Result of reading an object.
#[derive(Clone, Debug)]
pub struct ReadOutcome {
    /// The object contents, when stored with a real payload.
    pub bytes: Option<Vec<u8>>,
    /// `true` if reconstruction (degraded read) was needed.
    pub degraded: bool,
    /// Simulated completion instant.
    pub completed_at: SimTime,
}

/// Byte accounting split into user data vs redundancy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpaceUsage {
    /// Bytes holding user data (data chunks / primary replicas).
    pub user_bytes: ByteSize,
    /// Bytes holding parity or extra replicas.
    pub redundancy_bytes: ByteSize,
}

impl SpaceUsage {
    /// Total occupied bytes.
    pub fn total(self) -> ByteSize {
        self.user_bytes + self.redundancy_bytes
    }

    /// `user / (user + redundancy)`, the paper's space-efficiency metric
    /// (Section VI-B). Returns 1.0 when nothing is stored.
    pub fn space_efficiency(self) -> f64 {
        let total = self.total().as_bytes();
        if total == 0 {
            return 1.0;
        }
        self.user_bytes.as_bytes() as f64 / total as f64
    }
}

/// Where an object lives: the stripes that hold it.
///
/// Layouts are handed back from [`StripeManager::store_object`] and passed
/// to the read/status/rebuild/remove operations. They are intentionally
/// opaque beyond size and scheme.
#[derive(Clone, Debug)]
pub struct ObjectLayout {
    owner: u64,
    size: ByteSize,
    scheme: RedundancyScheme,
    stripes: Vec<StripeId>,
}

impl ObjectLayout {
    /// The opaque owner tag supplied at store time.
    pub fn owner(&self) -> u64 {
        self.owner
    }

    /// Logical object size.
    pub fn size(&self) -> ByteSize {
        self.size
    }

    /// The redundancy scheme requested at store time.
    pub fn scheme(&self) -> RedundancyScheme {
        self.scheme
    }

    /// The stripes holding the object.
    pub fn stripes(&self) -> &[StripeId] {
        &self.stripes
    }
}

#[derive(Clone, Copy, Debug)]
struct StripeChunk {
    role: ChunkRole,
    device: DeviceId,
    handle: ChunkHandle,
    len: ByteSize,
    /// Real payload retained at encode time? (Payload itself lives on the
    /// device; this only records whether the stripe is in real-data mode.)
    real: bool,
}

#[derive(Clone, Debug)]
struct StripeMeta {
    /// Effective scheme after clamping to the healthy-device count at
    /// store time.
    scheme: RedundancyScheme,
    /// The data-shard count `m` the encoder used (store-time healthy
    /// width minus parity). Short stripes hold fewer real data chunks and
    /// were padded to `m` with phantom zero shards; decode must reuse the
    /// same geometry.
    encode_m: usize,
    chunks: Vec<StripeChunk>,
}

impl StripeMeta {
    fn tolerated(&self, width: usize) -> usize {
        self.scheme.failures_tolerated(width)
    }
}

/// Cache of constructed codecs keyed by `(data, parity)` geometry.
///
/// Building a codec inverts a Vandermonde block and precomputes all
/// per-coefficient multiply kernels — far too expensive to repeat per
/// stripe operation, and an array only ever uses a handful of geometries.
#[derive(Clone, Debug, Default)]
struct CodecCache(HashMap<(usize, usize), ReedSolomon>);

impl CodecCache {
    fn get(&mut self, m: usize, k: usize) -> Result<&ReedSolomon, CodecError> {
        use std::collections::hash_map::Entry;
        match self.0.entry((m, k)) {
            Entry::Occupied(e) => Ok(e.into_mut()),
            Entry::Vacant(e) => Ok(e.insert(ReedSolomon::new(m, k)?)),
        }
    }
}

/// Reusable encode buffers. Stripe operations clear and refill these,
/// leaving capacity behind for the next request — the write path performs
/// no heap allocation once buffer capacities reach steady state.
#[derive(Clone, Debug, Default)]
struct StripeScratch {
    /// Padded data shards fed to the encoder (also old/new chunk images on
    /// the delta path).
    shards: Vec<Vec<u8>>,
    /// Encoded parity rows.
    parity: Vec<Vec<u8>>,
}

/// Sizes `pool` to exactly `count` buffers of `len` zero bytes, reusing
/// whatever capacity previous requests left behind.
fn reset_buffers(pool: &mut Vec<Vec<u8>>, count: usize, len: usize) {
    pool.resize_with(count, Vec::new);
    for b in pool.iter_mut() {
        b.clear();
        b.resize(len, 0);
    }
}

/// The mutable halves of a [`StripeManager`] that stripe I/O needs,
/// borrowed disjointly from the `stripes` map so per-request paths can
/// hold `&StripeMeta` straight out of the map instead of cloning it.
struct StripeIo<'a> {
    array: &'a mut FlashArray,
    transient_retries: &'a mut u64,
    codecs: &'a mut CodecCache,
    scratch: &'a mut StripeScratch,
}

/// Stores objects as variable-redundancy stripes on a [`FlashArray`].
///
/// See the crate docs for the model. One manager owns one array.
#[derive(Clone, Debug)]
pub struct StripeManager {
    array: FlashArray,
    chunk_size: ByteSize,
    placement: PlacementPolicy,
    next_handle: u64,
    next_stripe: u64,
    stripes: HashMap<StripeId, StripeMeta>,
    usage: SpaceUsage,
    transient_retries: u64,
    codecs: CodecCache,
    scratch: StripeScratch,
}

/// Retries per chunk read before a transient timeout is escalated.
const TRANSIENT_RETRY_LIMIT: u32 = 3;
/// Backoff before the first retry; doubles on each subsequent one.
const TRANSIENT_BACKOFF: SimDuration = SimDuration::from_micros(500);

impl StripeManager {
    /// Creates a manager over `array` using `chunk_size` chunks.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    pub fn new(array: FlashArray, chunk_size: ByteSize) -> Self {
        Self::with_placement(array, chunk_size, PlacementPolicy::RoundRobin)
    }

    /// Creates a manager with an explicit parity placement policy (the
    /// RAID-4-style [`PlacementPolicy::Fixed`] exists for the wear-balance
    /// ablation).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    pub fn with_placement(
        array: FlashArray,
        chunk_size: ByteSize,
        placement: PlacementPolicy,
    ) -> Self {
        assert!(!chunk_size.is_zero(), "chunk size must be non-zero");
        StripeManager {
            array,
            chunk_size,
            placement,
            next_handle: 0,
            next_stripe: 0,
            stripes: HashMap::new(),
            usage: SpaceUsage::default(),
            transient_retries: 0,
            codecs: CodecCache::default(),
            scratch: StripeScratch::default(),
        }
    }

    /// Splits the manager into its I/O half and the stripe map, so request
    /// paths can mutate devices/buffers while borrowing metadata in place.
    fn split_io(&mut self) -> (StripeIo<'_>, &HashMap<StripeId, StripeMeta>) {
        (
            StripeIo {
                array: &mut self.array,
                transient_retries: &mut self.transient_retries,
                codecs: &mut self.codecs,
                scratch: &mut self.scratch,
            },
            &self.stripes,
        )
    }

    /// Chunk reads retried after a transient timeout, cumulatively.
    pub fn transient_retries(&self) -> u64 {
        self.transient_retries
    }

    /// One round of seeded latent corruption across the array (see
    /// [`FaultPlan::inject_latent_corruption`]). Returns the number of
    /// chunks corrupted.
    pub fn inject_latent_corruption(&mut self, plan: &mut FaultPlan, rate: f64) -> usize {
        plan.inject_latent_corruption(&mut self.array, rate)
    }

    /// Arms per-read transient timeouts on every device (see
    /// [`FaultPlan::arm_transient_faults`]).
    pub fn arm_transient_faults(&mut self, plan: &mut FaultPlan, rate: f64) {
        plan.arm_transient_faults(&mut self.array, rate);
    }

    /// Scales one device's service times (see [`FaultPlan::slow_device`]).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or `factor` is not finite and
    /// positive.
    pub fn slow_device(&mut self, plan: &mut FaultPlan, id: DeviceId, factor: f64) {
        plan.slow_device(&mut self.array, id, factor);
    }

    /// The configured chunk size.
    pub fn chunk_size(&self) -> ByteSize {
        self.chunk_size
    }

    /// Immutable access to the underlying array.
    pub fn array(&self) -> &FlashArray {
        &self.array
    }

    /// Installs a shared tracer handle; stripe- and flash-layer spans are
    /// recorded through it from then on.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.array.set_tracer(tracer);
    }

    /// The tracer handle (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        self.array.tracer()
    }

    /// Current byte accounting.
    pub fn usage(&self) -> SpaceUsage {
        self.usage
    }

    /// Total free bytes across healthy devices.
    pub fn free_capacity(&self) -> ByteSize {
        self.array
            .healthy_devices()
            .into_iter()
            .map(|d| self.array.device(d).available())
            .sum()
    }

    /// Physical bytes an object of `size` will occupy under `scheme`,
    /// including padding of partial chunks in parity stripes and all
    /// replicas — what the cache manager budgets evictions against.
    ///
    /// The estimate uses the current healthy-device count, matching what
    /// [`StripeManager::store_object`] would do right now.
    pub fn physical_bytes_needed(&self, size: ByteSize, scheme: RedundancyScheme) -> ByteSize {
        let healthy = self.array.healthy_devices().len();
        if healthy == 0 || size.is_zero() {
            return ByteSize::ZERO;
        }
        let scheme = clamp_scheme(scheme, healthy);
        match scheme {
            RedundancyScheme::Replication => size * healthy as u64,
            RedundancyScheme::Parity(k) => {
                if k == 0 {
                    return size;
                }
                let m = healthy - k as usize;
                let chunks = size.div_ceil(self.chunk_size);
                let stripes = chunks.div_ceil(m as u64);
                // Each stripe's parity chunks are as large as its largest
                // data chunk; approximate with full chunk size.
                size + self.chunk_size * (stripes * k as u64)
            }
        }
    }

    /// Fails a device in place ("shootdown").
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn fail_device(&mut self, id: DeviceId) {
        self.array.fail_device(id);
    }

    /// Replaces a device with a blank spare. Stripe metadata is retained;
    /// run the rebuild path to repopulate the spare.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn replace_device(&mut self, id: DeviceId) {
        self.array.replace_device(id);
    }

    fn alloc_handle(&mut self) -> ChunkHandle {
        let h = ChunkHandle::new(self.next_handle);
        self.next_handle += 1;
        h
    }

    /// Splits a payload (or a size) into per-chunk lengths.
    fn chunk_lengths(&self, size: ByteSize) -> Vec<ByteSize> {
        let mut out = Vec::new();
        let mut remaining = size.as_bytes();
        let c = self.chunk_size.as_bytes();
        while remaining > 0 {
            let l = remaining.min(c);
            out.push(ByteSize::from_bytes(l));
            remaining -= l;
        }
        out
    }

    /// Stores an object and returns its layout.
    ///
    /// `owner` is an opaque tag echoed back in [`ObjectLayout::owner`];
    /// `payload`, when given, must be exactly `size` bytes and enables real
    /// byte-for-byte reads and reconstruction. Without it the stripes are
    /// synthetic (sizes and timing only).
    ///
    /// If devices have failed, placement uses only the surviving devices
    /// and the parity count is clamped to `healthy - 1`, so the cache keeps
    /// accepting objects "as long as there is at least one working device"
    /// (Section VI-C).
    ///
    /// # Errors
    ///
    /// * [`StripeError::EmptyObject`] — `size` is zero.
    /// * [`StripeError::PayloadSizeMismatch`] — payload length ≠ `size`.
    /// * [`StripeError::NoHealthyDevices`] — the whole array is down.
    /// * [`StripeError::Flash`] — a device rejected a write (e.g. full);
    ///   partially written chunks are rolled back.
    pub fn store_object(
        &mut self,
        owner: u64,
        size: ByteSize,
        scheme: RedundancyScheme,
        payload: Option<&[u8]>,
    ) -> Result<ObjectLayout, StripeError> {
        if size.is_zero() {
            return Err(StripeError::EmptyObject);
        }
        if let Some(p) = payload {
            if p.len() as u64 != size.as_bytes() {
                return Err(StripeError::PayloadSizeMismatch {
                    declared: size.as_bytes(),
                    payload: p.len() as u64,
                });
            }
        }
        let healthy = self.array.healthy_devices();
        if healthy.is_empty() {
            return Err(StripeError::NoHealthyDevices);
        }
        let scheme = clamp_scheme(scheme, healthy.len());

        let lens = self.chunk_lengths(size);
        let m = scheme.data_chunks_per_stripe(healthy.len());

        let mut stripe_ids = Vec::new();
        let mut written: Vec<(DeviceId, ChunkHandle)> = Vec::new();
        let mut completions: Vec<SimTime> = Vec::new();
        let now = self.array.clock().now();
        let usage_before = self.usage;

        let result = (|this: &mut Self| -> Result<(), StripeError> {
            for (stripe_no, group) in lens.chunks(m).enumerate() {
                let stripe_index = this.next_stripe;
                this.next_stripe += 1;
                let id = StripeId(stripe_index);
                let layout = StripeLayout::with_placement(
                    stripe_index,
                    scheme,
                    healthy.len(),
                    this.placement,
                );

                let mut chunks: Vec<StripeChunk> = Vec::new();
                let parity_len = group.iter().copied().fold(ByteSize::ZERO, ByteSize::max);

                // Data chunks (or primary replicas).
                for (j, &len) in group.iter().enumerate() {
                    let role = if scheme.is_replication() {
                        ChunkRole::Replica(0)
                    } else {
                        ChunkRole::Data(j)
                    };
                    let slot = if scheme.is_replication() { 0 } else { j };
                    let device = healthy[layout.data_device(slot).0];
                    let handle = this.alloc_handle();
                    let stored = match payload {
                        Some(p) => {
                            let off = (stripe_no * m + j) as u64 * this.chunk_size.as_bytes();
                            let chunk_bytes = &p[off as usize..(off + len.as_bytes()) as usize];
                            StoredChunk::real(Bytes::copy_from_slice(chunk_bytes))
                        }
                        None => StoredChunk::synthetic(len),
                    };
                    let done = this
                        .array
                        .device_mut(device)
                        .write_chunk(handle, stored, now)?;
                    completions.push(done);
                    written.push((device, handle));
                    chunks.push(StripeChunk {
                        role,
                        device,
                        handle,
                        len,
                        real: payload.is_some(),
                    });
                    this.usage.user_bytes += len;
                }

                // Redundancy chunks.
                match scheme {
                    RedundancyScheme::Parity(0) => {}
                    RedundancyScheme::Parity(k) => {
                        if let Some(p) = payload {
                            // Pad each data chunk to parity_len in the
                            // scratch pool and encode into reusable parity
                            // buffers. The codec wants exactly m data
                            // shards; rows past the stripe's real chunks
                            // stay zero (phantom tail shards).
                            let plen = parity_len.as_bytes() as usize;
                            reset_buffers(&mut this.scratch.shards, m, plen);
                            this.scratch.parity.resize_with(k as usize, Vec::new);
                            for (j, c) in chunks.iter().enumerate() {
                                let off = stripe_offset(stripe_no, m, c.role, this.chunk_size);
                                this.scratch.shards[j][..c.len.as_bytes() as usize]
                                    .copy_from_slice(
                                        &p[off as usize..(off + c.len.as_bytes()) as usize],
                                    );
                            }
                            let rs = this.codecs.get(m, k as usize)?;
                            rs.encode_into(&this.scratch.shards, &mut this.scratch.parity)?;
                        }
                        for p in 0..k as usize {
                            let device = healthy[layout.parity_device(p).0];
                            let handle = this.alloc_handle();
                            let stored = match payload {
                                Some(_) => StoredChunk::real(Bytes::copy_from_slice(
                                    &this.scratch.parity[p],
                                )),
                                None => StoredChunk::synthetic(parity_len),
                            };
                            let done = this
                                .array
                                .device_mut(device)
                                .write_chunk(handle, stored, now)?;
                            completions.push(done);
                            written.push((device, handle));
                            chunks.push(StripeChunk {
                                role: ChunkRole::Parity(p),
                                device,
                                handle,
                                len: parity_len,
                                real: payload.is_some(),
                            });
                            this.usage.redundancy_bytes += parity_len;
                        }
                    }
                    RedundancyScheme::Replication => {
                        // One data chunk per stripe (m == 1); replicate it.
                        let len = group[0];
                        for r in 0..layout.redundancy_slots() {
                            let device = healthy[layout.parity_device(r).0];
                            let handle = this.alloc_handle();
                            let stored = match payload {
                                Some(p) => {
                                    let off = stripe_no as u64 * this.chunk_size.as_bytes();
                                    StoredChunk::real(Bytes::copy_from_slice(
                                        &p[off as usize..(off + len.as_bytes()) as usize],
                                    ))
                                }
                                None => StoredChunk::synthetic(len),
                            };
                            let done = this
                                .array
                                .device_mut(device)
                                .write_chunk(handle, stored, now)?;
                            completions.push(done);
                            written.push((device, handle));
                            chunks.push(StripeChunk {
                                role: ChunkRole::Replica(r + 1),
                                device,
                                handle,
                                len,
                                real: payload.is_some(),
                            });
                            this.usage.redundancy_bytes += len;
                        }
                    }
                }

                this.stripes.insert(
                    id,
                    StripeMeta {
                        scheme,
                        encode_m: m,
                        chunks,
                    },
                );
                stripe_ids.push(id);
            }
            Ok(())
        })(self);

        if let Err(e) = result {
            // Roll back anything written — chunks, stripe metadata, and
            // accounting (including chunks of the stripe that was being
            // assembled when the error hit).
            for (device, handle) in written {
                self.array.device_mut(device).remove_chunk(handle);
            }
            for id in stripe_ids {
                self.stripes.remove(&id);
            }
            self.usage = usage_before;
            return Err(e);
        }

        let completed_at = self.array.complete_batch(completions);
        self.array
            .tracer()
            .record_span(Layer::Stripe, "store", now, completed_at);
        Ok(ObjectLayout {
            owner,
            size,
            scheme,
            stripes: stripe_ids,
        })
    }

    fn stripe(&self, id: StripeId) -> Result<&StripeMeta, StripeError> {
        self.stripes.get(&id).ok_or(StripeError::UnknownStripe(id))
    }

    /// The object's health, computed from chunk intactness. Free — no
    /// service time is charged (a metadata scan).
    ///
    /// # Errors
    ///
    /// [`StripeError::UnknownStripe`] if the layout references a removed
    /// stripe.
    pub fn object_status(&self, layout: &ObjectLayout) -> Result<ObjectStatus, StripeError> {
        let mut degraded = false;
        for &sid in &layout.stripes {
            let meta = self.stripe(sid)?;
            match self.stripe_health(meta) {
                StripeHealth::Intact => {}
                StripeHealth::Degraded(_) => degraded = true,
                StripeHealth::Lost(_) => return Ok(ObjectStatus::Lost),
            }
        }
        Ok(if degraded {
            ObjectStatus::Degraded
        } else {
            ObjectStatus::Intact
        })
    }

    fn stripe_health(&self, meta: &StripeMeta) -> StripeHealth {
        stripe_health_on(&self.array, meta)
    }

    /// Reads an object, reconstructing lost chunks on the fly when needed
    /// (the paper's on-demand degraded read, Section IV-D).
    ///
    /// # Errors
    ///
    /// * [`StripeError::ObjectLost`] — some stripe lost more chunks than
    ///   its redundancy tolerates.
    /// * [`StripeError::UnknownStripe`] — stale layout.
    /// * [`StripeError::Flash`] — unexpected device error.
    pub fn read_object(&mut self, layout: &ObjectLayout) -> Result<ReadOutcome, StripeError> {
        let now = self.array.clock().now();
        let retries_before = self.transient_retries;
        let mut completions: Vec<SimTime> = Vec::new();
        let mut degraded = false;
        let mut assembled: Option<Vec<Vec<u8>>> = None;

        let (mut io, stripes) = self.split_io();
        for &sid in &layout.stripes {
            let meta = stripes.get(&sid).ok_or(StripeError::UnknownStripe(sid))?;
            match stripe_health_on(io.array, meta) {
                StripeHealth::Lost(lost) => {
                    let tolerated = meta.tolerated(meta.chunks.len());
                    return Err(StripeError::ObjectLost {
                        stripe: sid,
                        lost,
                        tolerated,
                    });
                }
                StripeHealth::Intact => {
                    // Plain read of data chunks / primary replica.
                    let stripe_bytes = io.read_stripe_data(meta, now, &mut completions)?;
                    if let Some(b) = stripe_bytes {
                        assembled.get_or_insert_with(Vec::new).push(b);
                    }
                }
                StripeHealth::Degraded(_) => {
                    degraded = true;
                    let stripe_bytes = io.degraded_read_stripe(meta, now, &mut completions)?;
                    if let Some(b) = stripe_bytes {
                        assembled.get_or_insert_with(Vec::new).push(b);
                    }
                }
            }
        }

        let completed_at = self.array.complete_batch(completions);
        self.array
            .tracer()
            .record_span(Layer::Stripe, "read", now, completed_at);
        if degraded {
            // On-the-fly reconstruction served this read: flag the event
            // on the request's trace tree.
            self.array.tracer().annotate("read-repair", completed_at);
        }
        if self.transient_retries > retries_before {
            self.array.tracer().annotate("retry", completed_at);
        }
        let bytes = assembled.map(|per_stripe| {
            let mut out: Vec<u8> = per_stripe.into_iter().flatten().collect();
            out.truncate(layout.size.as_bytes() as usize);
            out
        });
        Ok(ReadOutcome {
            bytes,
            degraded,
            completed_at,
        })
    }

    /// Overwrites one data chunk of an object in place, maintaining
    /// parity with whichever update strategy costs fewer chunk reads
    /// (Section II-B of the paper: direct re-encoding reads the `m - 1`
    /// sibling data chunks; delta patching reads the old chunk plus the
    /// `k` parity chunks).
    ///
    /// `chunk_index` counts the object's data chunks from zero in object
    /// order. `new_payload`, when given, must match the chunk's stored
    /// length; omit it for synthetic (timing-only) stripes.
    ///
    /// Returns the strategy used and the completion instant.
    ///
    /// # Errors
    ///
    /// * [`StripeError::UnknownStripe`] — stale layout.
    /// * [`StripeError::ObjectLost`] — the stripe has lost chunks and no
    ///   update strategy can run without them (overwrite requires an
    ///   intact stripe).
    /// * [`StripeError::PayloadSizeMismatch`] — payload length differs
    ///   from the chunk's.
    /// * [`StripeError::Flash`] — device-level failures.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_index` is out of range for the layout.
    pub fn overwrite_chunk(
        &mut self,
        layout: &ObjectLayout,
        chunk_index: u64,
        new_payload: Option<&[u8]>,
    ) -> Result<(ParityUpdate, SimTime), StripeError> {
        // Locate the stripe holding this data chunk.
        let mut remaining = chunk_index;
        let mut found: Option<(StripeId, usize)> = None;
        for &sid in &layout.stripes {
            let meta = self.stripe(sid)?;
            let data_chunks = meta.chunks.iter().filter(|c| c.role.is_user_data()).count() as u64;
            if remaining < data_chunks {
                found = Some((sid, remaining as usize));
                break;
            }
            remaining -= data_chunks;
        }
        let (sid, local_j) = found.unwrap_or_else(|| {
            panic!(
                "chunk index {chunk_index} out of range for object {}",
                layout.owner
            )
        });
        let now = self.array.clock().now();
        let mut completions: Vec<SimTime> = Vec::new();

        let (mut io, stripes) = self.split_io();
        let meta = stripes.get(&sid).ok_or(StripeError::UnknownStripe(sid))?;

        // Overwrites need the stripe intact: reconstructing *and*
        // updating in one step is the rebuild path's job.
        if let StripeHealth::Degraded(lost) | StripeHealth::Lost(lost) =
            stripe_health_on(io.array, meta)
        {
            return Err(StripeError::ObjectLost {
                stripe: sid,
                lost,
                tolerated: meta.tolerated(meta.chunks.len()),
            });
        }

        let target_chunk = *meta
            .chunks
            .iter()
            .filter(|c| c.role.is_user_data())
            .nth(local_j)
            .expect("local index within stripe");
        if let Some(p) = new_payload {
            if p.len() as u64 != target_chunk.len.as_bytes() {
                return Err(StripeError::PayloadSizeMismatch {
                    declared: target_chunk.len.as_bytes(),
                    payload: p.len() as u64,
                });
            }
        }

        let method = match meta.scheme {
            RedundancyScheme::Replication => {
                // Rewrite every replica with the new contents.
                for c in &meta.chunks {
                    let stored = match new_payload {
                        Some(p) => StoredChunk::real(Bytes::copy_from_slice(p)),
                        None => StoredChunk::synthetic(c.len),
                    };
                    let done = io
                        .array
                        .device_mut(c.device)
                        .write_chunk(c.handle, stored, now)?;
                    completions.push(done);
                }
                ParityUpdate::Rewrite
            }
            RedundancyScheme::Parity(0) => {
                let stored = match new_payload {
                    Some(p) => StoredChunk::real(Bytes::copy_from_slice(p)),
                    None => StoredChunk::synthetic(target_chunk.len),
                };
                let done = io.array.device_mut(target_chunk.device).write_chunk(
                    target_chunk.handle,
                    stored,
                    now,
                )?;
                completions.push(done);
                ParityUpdate::Rewrite
            }
            RedundancyScheme::Parity(_) => io.overwrite_with_parity(
                meta,
                &target_chunk,
                local_j,
                new_payload,
                now,
                &mut completions,
            )?,
        };

        let completed_at = self.array.complete_batch(completions);
        self.array
            .tracer()
            .record_span(Layer::Stripe, "overwrite", now, completed_at);
        Ok((method, completed_at))
    }

    /// Rebuilds every lost chunk of an object back onto its (replaced)
    /// devices. Reads `m` survivors per damaged stripe, re-encodes, and
    /// writes the missing chunks. No-op for intact objects.
    ///
    /// Returns the completion instant.
    ///
    /// # Errors
    ///
    /// * [`StripeError::ObjectLost`] — a stripe is beyond recovery.
    /// * [`StripeError::UnknownStripe`] — stale layout.
    /// * [`StripeError::Flash`] — the rebuild target device rejected a
    ///   write (e.g. it is still failed).
    pub fn rebuild_object(&mut self, layout: &ObjectLayout) -> Result<SimTime, StripeError> {
        let now = self.array.clock().now();
        let mut completions: Vec<SimTime> = Vec::new();

        let (mut io, stripes) = self.split_io();
        for &sid in &layout.stripes {
            let meta = stripes.get(&sid).ok_or(StripeError::UnknownStripe(sid))?;
            match stripe_health_on(io.array, meta) {
                StripeHealth::Intact => continue,
                StripeHealth::Lost(lost) => {
                    return Err(StripeError::ObjectLost {
                        stripe: sid,
                        lost,
                        tolerated: meta.tolerated(meta.chunks.len()),
                    });
                }
                StripeHealth::Degraded(_) => {}
            }
            io.rebuild_stripe(meta, now, &mut completions)?;
        }
        let completed_at = self.array.complete_batch(completions);
        self.array
            .tracer()
            .record_span(Layer::Stripe, "rebuild", now, completed_at);
        Ok(completed_at)
    }

    /// Corrupts one data chunk of an object in place (a partial flash
    /// failure — a worn-out block — rather than a whole-device loss). The
    /// object becomes [`ObjectStatus::Degraded`] (or
    /// [`ObjectStatus::Lost`] if its redundancy cannot cover the damage).
    ///
    /// # Errors
    ///
    /// [`StripeError::UnknownStripe`] for stale layouts.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_index` is out of range.
    pub fn corrupt_data_chunk(
        &mut self,
        layout: &ObjectLayout,
        chunk_index: u64,
    ) -> Result<(), StripeError> {
        let mut remaining = chunk_index;
        for &sid in &layout.stripes {
            let meta = self.stripe(sid)?;
            let data: Vec<(DeviceId, ChunkHandle)> = meta
                .chunks
                .iter()
                .filter(|c| c.role.is_user_data())
                .map(|c| (c.device, c.handle))
                .collect();
            if (remaining as usize) < data.len() {
                let (device, handle) = data[remaining as usize];
                self.array.device_mut(device).corrupt_chunk(handle);
                return Ok(());
            }
            remaining -= data.len() as u64;
        }
        panic!(
            "chunk index {chunk_index} out of range for object {}",
            layout.owner
        );
    }

    /// Removes an object, releasing all its chunks and accounting. Chunks
    /// on failed devices are forgotten (their space died with the device).
    ///
    /// Stale layouts (already removed) are a no-op.
    pub fn remove_object(&mut self, layout: &ObjectLayout) {
        for &sid in &layout.stripes {
            if let Some(meta) = self.stripes.remove(&sid) {
                for c in meta.chunks {
                    self.array.device_mut(c.device).remove_chunk(c.handle);
                    match c.role {
                        ChunkRole::Data(_) | ChunkRole::Replica(0) => {
                            self.usage.user_bytes = self.usage.user_bytes.saturating_sub(c.len)
                        }
                        _ => {
                            self.usage.redundancy_bytes =
                                self.usage.redundancy_bytes.saturating_sub(c.len)
                        }
                    }
                }
            }
        }
    }

    /// Number of live stripes.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// Serializes an object's layout *and* the metadata of every stripe it
    /// references into an opaque blob for the metadata journal. The blob
    /// contains no chunk payloads — only placement (owner, size, scheme,
    /// and per-stripe chunk roles/devices/handles/lengths).
    ///
    /// # Errors
    ///
    /// [`StripeError::UnknownStripe`] if the layout references a stripe
    /// this manager no longer knows.
    pub fn export_object_meta(&self, layout: &ObjectLayout) -> Result<Vec<u8>, StripeError> {
        fn put_u32(out: &mut Vec<u8>, v: u32) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        fn put_u64(out: &mut Vec<u8>, v: u64) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        fn put_scheme(out: &mut Vec<u8>, scheme: RedundancyScheme) {
            match scheme {
                RedundancyScheme::Parity(k) => {
                    out.push(0);
                    out.push(k);
                }
                RedundancyScheme::Replication => {
                    out.push(1);
                    out.push(0);
                }
            }
        }
        let mut out = Vec::new();
        put_u64(&mut out, layout.owner);
        put_u64(&mut out, layout.size.as_bytes());
        put_scheme(&mut out, layout.scheme);
        put_u32(&mut out, layout.stripes.len() as u32);
        for &sid in &layout.stripes {
            let meta = self.stripe(sid)?;
            put_u64(&mut out, sid.as_u64());
            put_scheme(&mut out, meta.scheme);
            put_u32(&mut out, meta.encode_m as u32);
            put_u32(&mut out, meta.chunks.len() as u32);
            for c in &meta.chunks {
                let (tag, idx) = match c.role {
                    ChunkRole::Data(i) => (0u8, i),
                    ChunkRole::Parity(i) => (1u8, i),
                    ChunkRole::Replica(i) => (2u8, i),
                };
                out.push(tag);
                put_u32(&mut out, idx as u32);
                put_u32(&mut out, c.device.0 as u32);
                put_u64(&mut out, c.handle.as_u64());
                put_u64(&mut out, c.len.as_bytes());
                out.push(c.real as u8);
            }
        }
        Ok(out)
    }

    /// Re-registers an object from a blob produced by
    /// [`StripeManager::export_object_meta`]: reinstalls every stripe's
    /// metadata, folds the chunks back into the byte accounting, bumps the
    /// handle/stripe allocators past every installed identifier, and
    /// returns the reconstructed layout. Chunk *contents* are not touched —
    /// they either survived on the array or are found missing by the
    /// post-recovery audit.
    ///
    /// Installing a stripe id that is already registered replaces its
    /// metadata (last write wins, matching journal replay order).
    ///
    /// # Errors
    ///
    /// [`StripeError::CorruptMetadata`] if the blob does not parse.
    pub fn install_object_meta(&mut self, bytes: &[u8]) -> Result<ObjectLayout, StripeError> {
        struct Cursor<'a> {
            bytes: &'a [u8],
            at: usize,
        }
        impl Cursor<'_> {
            fn u8(&mut self) -> Result<u8, StripeError> {
                let v = *self
                    .bytes
                    .get(self.at)
                    .ok_or(StripeError::CorruptMetadata)?;
                self.at += 1;
                Ok(v)
            }
            fn u32(&mut self) -> Result<u32, StripeError> {
                let s = self
                    .bytes
                    .get(self.at..self.at + 4)
                    .ok_or(StripeError::CorruptMetadata)?;
                self.at += 4;
                Ok(u32::from_le_bytes(s.try_into().unwrap()))
            }
            fn u64(&mut self) -> Result<u64, StripeError> {
                let s = self
                    .bytes
                    .get(self.at..self.at + 8)
                    .ok_or(StripeError::CorruptMetadata)?;
                self.at += 8;
                Ok(u64::from_le_bytes(s.try_into().unwrap()))
            }
            fn scheme(&mut self) -> Result<RedundancyScheme, StripeError> {
                let tag = self.u8()?;
                let k = self.u8()?;
                match tag {
                    0 => Ok(RedundancyScheme::Parity(k)),
                    1 => Ok(RedundancyScheme::Replication),
                    _ => Err(StripeError::CorruptMetadata),
                }
            }
        }
        let mut cur = Cursor { bytes, at: 0 };
        let owner = cur.u64()?;
        let size = ByteSize::from_bytes(cur.u64()?);
        let scheme = cur.scheme()?;
        let stripe_count = cur.u32()? as usize;
        if stripe_count > bytes.len() {
            return Err(StripeError::CorruptMetadata);
        }
        let device_count = self.array.device_count();
        let mut stripes = Vec::with_capacity(stripe_count);
        let mut metas = Vec::with_capacity(stripe_count);
        for _ in 0..stripe_count {
            let sid = StripeId(cur.u64()?);
            let stripe_scheme = cur.scheme()?;
            let encode_m = cur.u32()? as usize;
            let chunk_count = cur.u32()? as usize;
            if chunk_count > bytes.len() {
                return Err(StripeError::CorruptMetadata);
            }
            let mut chunks = Vec::with_capacity(chunk_count);
            for _ in 0..chunk_count {
                let tag = cur.u8()?;
                let idx = cur.u32()? as usize;
                let role = match tag {
                    0 => ChunkRole::Data(idx),
                    1 => ChunkRole::Parity(idx),
                    2 => ChunkRole::Replica(idx),
                    _ => return Err(StripeError::CorruptMetadata),
                };
                let device = DeviceId(cur.u32()? as usize);
                if device.0 >= device_count {
                    return Err(StripeError::CorruptMetadata);
                }
                let handle = ChunkHandle::new(cur.u64()?);
                let len = ByteSize::from_bytes(cur.u64()?);
                let real = match cur.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(StripeError::CorruptMetadata),
                };
                chunks.push(StripeChunk {
                    role,
                    device,
                    handle,
                    len,
                    real,
                });
            }
            stripes.push(sid);
            metas.push((
                sid,
                StripeMeta {
                    scheme: stripe_scheme,
                    encode_m,
                    chunks,
                },
            ));
        }
        if cur.at != bytes.len() {
            return Err(StripeError::CorruptMetadata);
        }
        // Parse succeeded in full: commit.
        for (sid, meta) in metas {
            if let Some(old) = self.stripes.remove(&sid) {
                for c in &old.chunks {
                    self.charge_usage(c, false);
                }
            }
            for c in &meta.chunks {
                self.charge_usage(c, true);
                self.next_handle = self.next_handle.max(c.handle.as_u64() + 1);
            }
            self.next_stripe = self.next_stripe.max(sid.as_u64() + 1);
            self.stripes.insert(sid, meta);
        }
        Ok(ObjectLayout {
            owner,
            size,
            scheme,
            stripes,
        })
    }

    fn charge_usage(&mut self, c: &StripeChunk, add: bool) {
        let slot = if c.role.is_user_data() {
            &mut self.usage.user_bytes
        } else {
            &mut self.usage.redundancy_bytes
        };
        *slot = if add {
            *slot + c.len
        } else {
            slot.saturating_sub(c.len)
        };
    }

    /// Simulates the DRAM side of a power loss: every piece of in-memory
    /// stripe metadata (stripe tables, byte accounting, allocator cursors)
    /// vanishes. The flash array — the durable medium — is untouched.
    pub fn simulate_crash(&mut self) {
        self.stripes.clear();
        self.usage = SpaceUsage::default();
        self.next_handle = 0;
        self.next_stripe = 0;
    }

    /// Every `(device, handle)` pair referenced by live stripe metadata,
    /// sorted and deduplicated.
    pub fn referenced_chunks(&self) -> Vec<(DeviceId, ChunkHandle)> {
        let mut refs: Vec<(DeviceId, ChunkHandle)> = self
            .stripes
            .values()
            .flat_map(|m| m.chunks.iter().map(|c| (c.device, c.handle)))
            .collect();
        refs.sort_unstable_by_key(|(d, h)| (d.0, h.as_u64()));
        refs.dedup();
        refs
    }

    /// `(device, handle)` pairs claimed by more than one stripe chunk — a
    /// violation of the no-double-allocated-chunk invariant. Empty on a
    /// consistent manager.
    pub fn double_allocated_chunks(&self) -> Vec<(DeviceId, ChunkHandle)> {
        let mut refs: Vec<(DeviceId, ChunkHandle)> = self
            .stripes
            .values()
            .flat_map(|m| m.chunks.iter().map(|c| (c.device, c.handle)))
            .collect();
        refs.sort_unstable_by_key(|(d, h)| (d.0, h.as_u64()));
        let mut dup = Vec::new();
        for w in refs.windows(2) {
            if w[0] == w[1] && dup.last() != Some(&w[0]) {
                dup.push(w[0]);
            }
        }
        dup
    }

    /// Removes every chunk on the array that no live stripe references —
    /// the orphans left behind by writes whose metadata never reached the
    /// journal before a crash, or by removals whose chunk frees raced the
    /// crash. Returns how many chunks were collected.
    pub fn remove_unreferenced_chunks(&mut self) -> usize {
        use std::collections::HashSet;
        let referenced: HashSet<(usize, u64)> = self
            .referenced_chunks()
            .into_iter()
            .map(|(d, h)| (d.0, h.as_u64()))
            .collect();
        let mut removed = 0;
        for id in 0..self.array.device_count() {
            let device = self.array.device_mut(DeviceId(id));
            for handle in device.chunk_handles() {
                if !referenced.contains(&(id, handle.as_u64())) {
                    device.remove_chunk(handle);
                    removed += 1;
                }
            }
        }
        removed
    }
}

impl StripeIo<'_> {
    /// Reads the data chunks of an intact stripe. Returns assembled bytes
    /// if the stripe holds real payloads.
    fn read_stripe_data(
        &mut self,
        meta: &StripeMeta,
        now: SimTime,
        completions: &mut Vec<SimTime>,
    ) -> Result<Option<Vec<u8>>, StripeError> {
        if meta.scheme.is_replication() {
            // Primary replica only.
            let primary = meta
                .chunks
                .iter()
                .find(|c| matches!(c.role, ChunkRole::Replica(0)))
                .expect("replicated stripe has a primary");
            let (chunk, done) = read_chunk_retrying(
                self.array,
                self.transient_retries,
                primary.device,
                primary.handle,
                now,
            )?;
            completions.push(done);
            return Ok(chunk.payload().as_bytes().map(|b| b.to_vec()));
        }
        let mut parts: Vec<(usize, Option<Vec<u8>>)> = Vec::new();
        for c in &meta.chunks {
            if let ChunkRole::Data(j) = c.role {
                let (chunk, done) = read_chunk_retrying(
                    self.array,
                    self.transient_retries,
                    c.device,
                    c.handle,
                    now,
                )?;
                completions.push(done);
                parts.push((j, chunk.payload().as_bytes().map(|b| b.to_vec())));
            }
        }
        parts.sort_by_key(|(j, _)| *j);
        if parts.iter().all(|(_, b)| b.is_some()) && !parts.is_empty() {
            Ok(Some(
                parts.into_iter().flat_map(|(_, b)| b.unwrap()).collect(),
            ))
        } else {
            Ok(None)
        }
    }

    /// Degraded read: read enough surviving chunks to reconstruct the
    /// stripe's data, decode if payloads are real.
    fn degraded_read_stripe(
        &mut self,
        meta: &StripeMeta,
        now: SimTime,
        completions: &mut Vec<SimTime>,
    ) -> Result<Option<Vec<u8>>, StripeError> {
        if meta.scheme.is_replication() {
            // Any surviving replica serves the read.
            let replica = meta
                .chunks
                .iter()
                .find(|c| chunk_intact_on(self.array, c))
                .expect("degraded (not lost) stripe has a survivor");
            let (chunk, done) = read_chunk_retrying(
                self.array,
                self.transient_retries,
                replica.device,
                replica.handle,
                now,
            )?;
            completions.push(done);
            return Ok(chunk.payload().as_bytes().map(|b| b.to_vec()));
        }

        // Parity stripe: collect survivors (data + parity), read the first
        // `m` of them, reconstruct.
        let m_actual = meta
            .chunks
            .iter()
            .filter(|c| matches!(c.role, ChunkRole::Data(_)))
            .count();
        let parity_count = meta.chunks.len() - m_actual;
        let parity_len = meta
            .chunks
            .iter()
            .map(|c| c.len)
            .fold(ByteSize::ZERO, ByteSize::max);

        // Build the shard array in codec order: data shards (padded to the
        // encode-time `m` with phantom zero shards for short stripes),
        // then parity shards.
        let codec_m = meta.encode_m;

        let mut shards: Vec<Option<Vec<u8>>> = vec![None; codec_m + parity_count];
        let mut reads_done = 0usize;
        let real = meta.chunks.first().map(|c| c.real).unwrap_or(false);

        // Phantom zero shards (short stripes) are always "present".
        for shard in shards.iter_mut().take(codec_m).skip(m_actual) {
            *shard = Some(vec![0u8; parity_len.as_bytes() as usize]);
        }

        let mut missing_real = 0usize;
        for c in &meta.chunks {
            let idx = match c.role {
                ChunkRole::Data(j) => j,
                ChunkRole::Parity(p) => codec_m + p,
                ChunkRole::Replica(_) => unreachable!("parity stripe"),
            };
            if chunk_intact_on(self.array, c) {
                // Only read up to m shards total (phantoms are free).
                if reads_done + (codec_m - m_actual) < codec_m {
                    let (chunk, done) = read_chunk_retrying(
                        self.array,
                        self.transient_retries,
                        c.device,
                        c.handle,
                        now,
                    )?;
                    completions.push(done);
                    reads_done += 1;
                    shards[idx] = Some(match chunk.payload().as_bytes() {
                        Some(b) => {
                            let mut v = b.to_vec();
                            v.resize(parity_len.as_bytes() as usize, 0);
                            v
                        }
                        None => vec![0u8; parity_len.as_bytes() as usize],
                    });
                }
            } else {
                missing_real += 1;
            }
        }
        debug_assert!(missing_real <= parity_count);

        if !real {
            // Synthetic mode: timing already charged; nothing to decode.
            return Ok(None);
        }

        let rs = self.codecs.get(codec_m, parity_count)?;
        rs.reconstruct(&mut shards)?;

        // Assemble data bytes in order, trimming to recorded lengths.
        let mut out = Vec::new();
        let mut lens: Vec<(usize, ByteSize)> = meta
            .chunks
            .iter()
            .filter_map(|c| match c.role {
                ChunkRole::Data(j) => Some((j, c.len)),
                _ => None,
            })
            .collect();
        lens.sort_by_key(|(j, _)| *j);
        for (j, len) in lens {
            let shard = shards[j].as_ref().expect("reconstructed");
            out.extend_from_slice(&shard[..len.as_bytes() as usize]);
        }
        Ok(Some(out))
    }

    /// The parity-maintaining overwrite: picks delta vs direct by read
    /// count, reads what it needs, recomputes parity, writes back.
    ///
    /// All encode inputs and outputs live in the manager's scratch pool,
    /// so the steady-state write path allocates nothing.
    fn overwrite_with_parity(
        &mut self,
        meta: &StripeMeta,
        target: &StripeChunk,
        local_j: usize,
        new_payload: Option<&[u8]>,
        now: SimTime,
        completions: &mut Vec<SimTime>,
    ) -> Result<ParityUpdate, StripeError> {
        let is_parity = |c: &&StripeChunk| matches!(c.role, ChunkRole::Parity(_));
        let is_data = |c: &&StripeChunk| matches!(c.role, ChunkRole::Data(_));
        let k = meta.chunks.iter().filter(is_parity).count();
        let m_actual = meta.chunks.iter().filter(is_data).count();
        let parity_len = meta
            .chunks
            .iter()
            .map(|c| c.len)
            .fold(ByteSize::ZERO, ByteSize::max);
        let plen = parity_len.as_bytes() as usize;
        let real = target.real;

        // Section II-B's rule: the method with the fewest chunk reads.
        let delta_reads = 1 + k;
        let direct_reads = m_actual.saturating_sub(1);
        let use_delta = delta_reads <= direct_reads;

        if use_delta {
            // Read the old chunk and all parity chunks, padding each into
            // scratch; patch parity in place with the fused delta kernel.
            // scratch.shards[0] holds the old image, [1] the new one.
            reset_buffers(&mut self.scratch.shards, 2, plen);
            reset_buffers(&mut self.scratch.parity, k, plen);
            let (old_chunk, done) = read_chunk_retrying(
                self.array,
                self.transient_retries,
                target.device,
                target.handle,
                now,
            )?;
            completions.push(done);
            if real {
                let b = old_chunk.payload().as_bytes().expect("real stripe");
                self.scratch.shards[0][..b.len()].copy_from_slice(b);
                let new = new_payload.expect("real stripes get real payloads");
                self.scratch.shards[1][..new.len()].copy_from_slice(new);
            }
            for (p, c) in meta.chunks.iter().filter(is_parity).enumerate() {
                let (chunk, done) = read_chunk_retrying(
                    self.array,
                    self.transient_retries,
                    c.device,
                    c.handle,
                    now,
                )?;
                completions.push(done);
                if real {
                    let b = chunk.payload().as_bytes().expect("real stripe");
                    self.scratch.parity[p][..b.len()].copy_from_slice(b);
                }
            }
            if real {
                let rs = self.codecs.get(meta.encode_m, k)?;
                let (old, new) = (&self.scratch.shards[0], &self.scratch.shards[1]);
                reo_erasure::delta::apply_delta_update(
                    rs,
                    local_j,
                    old,
                    new,
                    &mut self.scratch.parity,
                )?;
            }
        } else {
            // Read the sibling data chunks and re-encode from scratch.
            // Rows past `m_actual` stay zero — the phantom shards of a
            // short stripe.
            reset_buffers(&mut self.scratch.shards, meta.encode_m, plen);
            self.scratch.parity.resize_with(k, Vec::new);
            for (j, c) in meta.chunks.iter().filter(is_data).enumerate() {
                if j == local_j {
                    if let Some(p) = new_payload {
                        self.scratch.shards[j][..p.len()].copy_from_slice(p);
                    }
                    continue;
                }
                let (chunk, done) = read_chunk_retrying(
                    self.array,
                    self.transient_retries,
                    c.device,
                    c.handle,
                    now,
                )?;
                completions.push(done);
                if real {
                    if let Some(b) = chunk.payload().as_bytes() {
                        self.scratch.shards[j][..b.len()].copy_from_slice(b);
                    }
                }
            }
            if real {
                let rs = self.codecs.get(meta.encode_m, k)?;
                rs.encode_into(&self.scratch.shards, &mut self.scratch.parity)?;
            }
        }

        // Write the new data chunk and the refreshed parity chunks.
        let stored = match new_payload {
            Some(p) => StoredChunk::real(Bytes::copy_from_slice(p)),
            None => StoredChunk::synthetic(target.len),
        };
        let done = self
            .array
            .device_mut(target.device)
            .write_chunk(target.handle, stored, now)?;
        completions.push(done);
        for (p, c) in meta.chunks.iter().filter(is_parity).enumerate() {
            let stored = if real {
                StoredChunk::real(Bytes::copy_from_slice(&self.scratch.parity[p]))
            } else {
                StoredChunk::synthetic(c.len)
            };
            let done = self
                .array
                .device_mut(c.device)
                .write_chunk(c.handle, stored, now)?;
            completions.push(done);
        }

        Ok(if use_delta {
            ParityUpdate::Delta
        } else {
            ParityUpdate::Direct
        })
    }

    /// Rebuilds the lost chunks of one degraded stripe back onto their
    /// (replaced) devices.
    fn rebuild_stripe(
        &mut self,
        meta: &StripeMeta,
        now: SimTime,
        completions: &mut Vec<SimTime>,
    ) -> Result<(), StripeError> {
        if meta.scheme.is_replication() {
            // Copy a surviving replica onto each lost slot.
            let survivor = *meta
                .chunks
                .iter()
                .find(|c| chunk_intact_on(self.array, c))
                .expect("degraded stripe has a survivor");
            let (src, done) = read_chunk_retrying(
                self.array,
                self.transient_retries,
                survivor.device,
                survivor.handle,
                now,
            )?;
            completions.push(done);
            let lost: Vec<StripeChunk> = meta
                .chunks
                .iter()
                .filter(|c| !chunk_intact_on(self.array, c))
                .copied()
                .collect();
            for c in lost {
                let stored = match src.payload().as_bytes() {
                    Some(b) => StoredChunk::real(b.clone()),
                    None => StoredChunk::synthetic(c.len),
                };
                let done = self
                    .array
                    .device_mut(c.device)
                    .write_chunk(c.handle, stored, now)?;
                completions.push(done);
            }
            return Ok(());
        }

        // Parity stripe: reconstruct all shards, write back lost.
        let parity_len = meta
            .chunks
            .iter()
            .map(|c| c.len)
            .fold(ByteSize::ZERO, ByteSize::max);
        let codec_m = meta.encode_m;
        let real = meta.chunks.first().map(|c| c.real).unwrap_or(false);
        let parity_count = meta
            .chunks
            .iter()
            .filter(|c| matches!(c.role, ChunkRole::Parity(_)))
            .count();
        let m_actual = meta.chunks.len() - parity_count;

        let mut shards: Vec<Option<Vec<u8>>> = vec![None; codec_m + parity_count];
        for shard in shards.iter_mut().take(codec_m).skip(m_actual) {
            *shard = Some(vec![0u8; parity_len.as_bytes() as usize]);
        }
        let mut survivors_read = 0usize;
        for c in &meta.chunks {
            if !chunk_intact_on(self.array, c) {
                continue;
            }
            if survivors_read + (codec_m - m_actual) >= codec_m {
                break;
            }
            let idx = match c.role {
                ChunkRole::Data(j) => j,
                ChunkRole::Parity(p) => codec_m + p,
                ChunkRole::Replica(_) => unreachable!(),
            };
            let (chunk, done) =
                read_chunk_retrying(self.array, self.transient_retries, c.device, c.handle, now)?;
            completions.push(done);
            survivors_read += 1;
            shards[idx] = Some(match chunk.payload().as_bytes() {
                Some(b) => {
                    let mut v = b.to_vec();
                    v.resize(parity_len.as_bytes() as usize, 0);
                    v
                }
                None => vec![0u8; parity_len.as_bytes() as usize],
            });
        }

        if real {
            let rs = self.codecs.get(codec_m, parity_count)?;
            rs.reconstruct(&mut shards)?;
        }

        let lost: Vec<StripeChunk> = meta
            .chunks
            .iter()
            .filter(|c| !chunk_intact_on(self.array, c))
            .copied()
            .collect();
        for c in lost {
            let idx = match c.role {
                ChunkRole::Data(j) => j,
                ChunkRole::Parity(p) => codec_m + p,
                ChunkRole::Replica(_) => unreachable!(),
            };
            let stored = if real {
                let shard = shards[idx].as_ref().expect("reconstructed");
                StoredChunk::real(Bytes::copy_from_slice(&shard[..c.len.as_bytes() as usize]))
            } else {
                StoredChunk::synthetic(c.len)
            };
            let done = self
                .array
                .device_mut(c.device)
                .write_chunk(c.handle, stored, now)?;
            completions.push(done);
        }
        Ok(())
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StripeHealth {
    Intact,
    Degraded(usize),
    Lost(usize),
}

/// Reads a chunk, absorbing transient timeouts: waits out a doubling
/// backoff and retries up to [`TRANSIENT_RETRY_LIMIT`] times before
/// letting the error escalate. The backoff is charged to the operation's
/// timeline (the retried read starts later), so transient faults surface
/// as latency, not data loss.
fn read_chunk_retrying(
    array: &mut FlashArray,
    transient_retries: &mut u64,
    device: DeviceId,
    handle: ChunkHandle,
    now: SimTime,
) -> Result<(StoredChunk, SimTime), FlashError> {
    let mut at = now;
    let mut backoff = TRANSIENT_BACKOFF;
    let mut attempts = 0;
    loop {
        match array.device_mut(device).read_chunk(handle, at) {
            Err(FlashError::TransientTimeout { .. }) if attempts < TRANSIENT_RETRY_LIMIT => {
                attempts += 1;
                *transient_retries += 1;
                at += backoff;
                backoff = backoff * 2;
            }
            other => return other,
        }
    }
}

fn chunk_intact_on(array: &FlashArray, c: &StripeChunk) -> bool {
    array.device(c.device).chunk_is_intact(c.handle)
}

fn stripe_health_on(array: &FlashArray, meta: &StripeMeta) -> StripeHealth {
    let lost = meta
        .chunks
        .iter()
        .filter(|c| !chunk_intact_on(array, c))
        .count();
    if lost == 0 {
        return StripeHealth::Intact;
    }
    if meta.scheme.is_replication() {
        // Recoverable while any replica survives.
        if lost == meta.chunks.len() {
            StripeHealth::Lost(lost)
        } else {
            StripeHealth::Degraded(lost)
        }
    } else {
        let width = meta.chunks.len();
        if lost <= meta.tolerated(width) {
            StripeHealth::Degraded(lost)
        } else {
            StripeHealth::Lost(lost)
        }
    }
}

fn clamp_scheme(scheme: RedundancyScheme, healthy: usize) -> RedundancyScheme {
    match scheme {
        RedundancyScheme::Parity(k) => {
            RedundancyScheme::Parity(k.min((healthy.saturating_sub(1)) as u8))
        }
        RedundancyScheme::Replication => RedundancyScheme::Replication,
    }
}

fn stripe_offset(stripe_no: usize, m: usize, role: ChunkRole, chunk_size: ByteSize) -> u64 {
    let j = match role {
        ChunkRole::Data(j) => j,
        ChunkRole::Replica(0) => 0,
        _ => 0,
    };
    (stripe_no * m + j) as u64 * chunk_size.as_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use reo_flashsim::DeviceConfig;
    use reo_sim::{ServiceModel, SimClock, SimDuration};

    fn test_array(n: usize, capacity_mib: u64) -> FlashArray {
        let cfg = DeviceConfig {
            capacity: ByteSize::from_mib(capacity_mib),
            read: ServiceModel::new(SimDuration::from_micros(100), 512 * 1024 * 1024),
            write: ServiceModel::new(SimDuration::from_micros(200), 512 * 1024 * 1024),
            erase_block: ByteSize::from_kib(128),
            pe_cycle_limit: 3000,
        };
        FlashArray::new(n, cfg, SimClock::new())
    }

    fn mgr(n: usize) -> StripeManager {
        StripeManager::new(test_array(n, 64), ByteSize::from_kib(4))
    }

    fn payload(len: usize) -> Vec<u8> {
        (0..len).map(|i| ((i * 131 + 17) % 256) as u8).collect()
    }

    #[test]
    fn store_and_read_real_payload() {
        let mut m = mgr(5);
        let data = payload(10_000); // 3 chunks of 4KiB: 4096+4096+1808
        let layout = m
            .store_object(
                7,
                ByteSize::from_bytes(10_000),
                RedundancyScheme::parity(2),
                Some(&data),
            )
            .unwrap();
        assert_eq!(layout.owner(), 7);
        let out = m.read_object(&layout).unwrap();
        assert!(!out.degraded);
        assert_eq!(out.bytes.as_deref(), Some(&data[..]));
    }

    #[test]
    fn degraded_read_reconstructs_real_bytes() {
        let mut m = mgr(5);
        let data = payload(20_000);
        let layout = m
            .store_object(
                1,
                ByteSize::from_bytes(20_000),
                RedundancyScheme::parity(2),
                Some(&data),
            )
            .unwrap();
        // Fail two devices: 2-parity must still serve every byte.
        m.fail_device(DeviceId(0));
        m.fail_device(DeviceId(3));
        assert_eq!(m.object_status(&layout).unwrap(), ObjectStatus::Degraded);
        let out = m.read_object(&layout).unwrap();
        assert!(out.degraded);
        assert_eq!(out.bytes.as_deref(), Some(&data[..]));
    }

    #[test]
    fn three_failures_exceed_two_parity() {
        let mut m = mgr(5);
        let data = payload(20_000);
        let layout = m
            .store_object(
                1,
                ByteSize::from_bytes(20_000),
                RedundancyScheme::parity(2),
                Some(&data),
            )
            .unwrap();
        m.fail_device(DeviceId(0));
        m.fail_device(DeviceId(1));
        m.fail_device(DeviceId(2));
        assert_eq!(m.object_status(&layout).unwrap(), ObjectStatus::Lost);
        assert!(matches!(
            m.read_object(&layout),
            Err(StripeError::ObjectLost { .. })
        ));
    }

    #[test]
    fn replication_survives_all_but_one() {
        let mut m = mgr(5);
        let data = payload(6_000);
        let layout = m
            .store_object(
                2,
                ByteSize::from_bytes(6_000),
                RedundancyScheme::Replication,
                Some(&data),
            )
            .unwrap();
        for d in 0..4 {
            m.fail_device(DeviceId(d));
        }
        assert_eq!(m.object_status(&layout).unwrap(), ObjectStatus::Degraded);
        let out = m.read_object(&layout).unwrap();
        assert_eq!(out.bytes.as_deref(), Some(&data[..]));
        m.fail_device(DeviceId(4));
        assert_eq!(m.object_status(&layout).unwrap(), ObjectStatus::Lost);
    }

    #[test]
    fn zero_parity_loss_is_fatal() {
        let mut m = mgr(5);
        let layout = m
            .store_object(3, ByteSize::from_kib(40), RedundancyScheme::parity(0), None)
            .unwrap();
        // 40 KiB / 4 KiB = 10 chunks across 5 devices: every device holds some.
        m.fail_device(DeviceId(2));
        assert_eq!(m.object_status(&layout).unwrap(), ObjectStatus::Lost);
    }

    #[test]
    fn rebuild_after_spare_insertion_real() {
        let mut m = mgr(5);
        let data = payload(30_000);
        let layout = m
            .store_object(
                4,
                ByteSize::from_bytes(30_000),
                RedundancyScheme::parity(1),
                Some(&data),
            )
            .unwrap();
        m.fail_device(DeviceId(1));
        assert_eq!(m.object_status(&layout).unwrap(), ObjectStatus::Degraded);
        m.replace_device(DeviceId(1));
        m.rebuild_object(&layout).unwrap();
        assert_eq!(m.object_status(&layout).unwrap(), ObjectStatus::Intact);
        // Post-rebuild reads are non-degraded and byte-identical.
        let out = m.read_object(&layout).unwrap();
        assert!(!out.degraded);
        assert_eq!(out.bytes.as_deref(), Some(&data[..]));
    }

    #[test]
    fn rebuild_replicated_object() {
        let mut m = mgr(3);
        let data = payload(5_000);
        let layout = m
            .store_object(
                5,
                ByteSize::from_bytes(5_000),
                RedundancyScheme::Replication,
                Some(&data),
            )
            .unwrap();
        m.fail_device(DeviceId(0));
        m.replace_device(DeviceId(0));
        m.rebuild_object(&layout).unwrap();
        assert_eq!(m.object_status(&layout).unwrap(), ObjectStatus::Intact);
        let out = m.read_object(&layout).unwrap();
        assert_eq!(out.bytes.as_deref(), Some(&data[..]));
    }

    #[test]
    fn synthetic_objects_track_space_and_timing() {
        let mut m = mgr(5);
        let layout = m
            .store_object(6, ByteSize::from_kib(12), RedundancyScheme::parity(1), None)
            .unwrap();
        // 3 data chunks + 1 parity chunk (one stripe of m=4).
        let usage = m.usage();
        assert_eq!(usage.user_bytes, ByteSize::from_kib(12));
        assert_eq!(usage.redundancy_bytes, ByteSize::from_kib(4));
        let out = m.read_object(&layout).unwrap();
        assert!(out.bytes.is_none());
        assert!(out.completed_at.as_nanos() > 0);
    }

    #[test]
    fn space_efficiency_matches_scheme_for_large_objects() {
        let mut m = mgr(5);
        // 2-parity on 5 devices: 60% ideal. A 12-chunk object fills 4
        // stripes of m=3 exactly.
        m.store_object(1, ByteSize::from_kib(48), RedundancyScheme::parity(2), None)
            .unwrap();
        let eff = m.usage().space_efficiency();
        assert!((eff - 0.6).abs() < 1e-9, "eff = {eff}");
    }

    #[test]
    fn remove_object_releases_everything() {
        let mut m = mgr(5);
        let layout = m
            .store_object(9, ByteSize::from_kib(40), RedundancyScheme::parity(2), None)
            .unwrap();
        assert!(m.stripe_count() > 0);
        m.remove_object(&layout);
        assert_eq!(m.stripe_count(), 0);
        assert_eq!(m.usage().total(), ByteSize::ZERO);
        assert!(matches!(
            m.read_object(&layout),
            Err(StripeError::UnknownStripe(_))
        ));
        // Idempotent.
        m.remove_object(&layout);
    }

    #[test]
    fn store_after_failures_uses_survivors() {
        let mut m = mgr(5);
        m.fail_device(DeviceId(0));
        m.fail_device(DeviceId(1));
        // 2-parity clamps to the 3 healthy devices (k=2 still fits).
        let layout = m
            .store_object(1, ByteSize::from_kib(8), RedundancyScheme::parity(2), None)
            .unwrap();
        let out = m.read_object(&layout).unwrap();
        assert!(!out.degraded);
        // With only 2 healthy devices, parity clamps to 1.
        m.fail_device(DeviceId(2));
        let layout2 = m
            .store_object(2, ByteSize::from_kib(8), RedundancyScheme::parity(2), None)
            .unwrap();
        assert_eq!(layout2.scheme(), RedundancyScheme::parity(1));
        // With zero healthy devices, storing fails.
        m.fail_device(DeviceId(3));
        m.fail_device(DeviceId(4));
        assert!(matches!(
            m.store_object(3, ByteSize::from_kib(4), RedundancyScheme::parity(0), None),
            Err(StripeError::NoHealthyDevices)
        ));
    }

    #[test]
    fn full_array_rolls_back_cleanly() {
        let mut m = StripeManager::new(test_array(2, 1), ByteSize::from_kib(64));
        // Fill device space (2 MiB total, replication doubles usage).
        let r1 = m.store_object(
            1,
            ByteSize::from_kib(900),
            RedundancyScheme::Replication,
            None,
        );
        assert!(r1.is_ok());
        let before = m.usage();
        let count_before = m.stripe_count();
        let r2 = m.store_object(
            2,
            ByteSize::from_kib(900),
            RedundancyScheme::Replication,
            None,
        );
        assert!(matches!(
            r2,
            Err(StripeError::Flash(FlashError::DeviceFull { .. }))
        ));
        assert_eq!(m.usage(), before, "failed store must not leak accounting");
        assert_eq!(
            m.stripe_count(),
            count_before,
            "failed store must not leak stripes"
        );
    }

    #[test]
    fn input_validation() {
        let mut m = mgr(3);
        assert!(matches!(
            m.store_object(1, ByteSize::ZERO, RedundancyScheme::parity(0), None),
            Err(StripeError::EmptyObject)
        ));
        assert!(matches!(
            m.store_object(
                1,
                ByteSize::from_kib(4),
                RedundancyScheme::parity(0),
                Some(&[1, 2])
            ),
            Err(StripeError::PayloadSizeMismatch { .. })
        ));
    }

    #[test]
    fn physical_bytes_needed_estimates() {
        let m = mgr(5);
        // 0-parity: exactly the size.
        assert_eq!(
            m.physical_bytes_needed(ByteSize::from_kib(10), RedundancyScheme::parity(0)),
            ByteSize::from_kib(10)
        );
        // Replication on 5 devices: 5x.
        assert_eq!(
            m.physical_bytes_needed(ByteSize::from_kib(10), RedundancyScheme::Replication),
            ByteSize::from_kib(50)
        );
        // 2-parity, 12 KiB = 3 chunks = 1 stripe => + 2 parity chunks.
        assert_eq!(
            m.physical_bytes_needed(ByteSize::from_kib(12), RedundancyScheme::parity(2)),
            ByteSize::from_kib(12 + 8)
        );
    }

    #[test]
    fn degraded_read_costs_more_time_than_intact() {
        // Compare two identical managers; one suffers a failure.
        let data = payload(64 * 1024);
        let mk = || {
            let mut m = StripeManager::new(test_array(5, 64), ByteSize::from_kib(16));
            let l = m
                .store_object(
                    1,
                    ByteSize::from_bytes(data.len() as u64),
                    RedundancyScheme::parity(2),
                    Some(&data),
                )
                .unwrap();
            (m, l)
        };
        let (mut intact, l1) = mk();
        let t0 = intact.array().clock().now();
        intact.read_object(&l1).unwrap();
        let intact_cost = intact.array().clock().now().saturating_since(t0);

        let (mut broken, l2) = mk();
        broken.fail_device(DeviceId(1));
        let t0 = broken.array().clock().now();
        let out = broken.read_object(&l2).unwrap();
        assert!(out.degraded);
        let degraded_cost = broken.array().clock().now().saturating_since(t0);
        assert!(
            degraded_cost >= intact_cost,
            "degraded {degraded_cost} < intact {intact_cost}"
        );
    }

    #[test]
    fn usage_space_efficiency_empty_is_one() {
        assert_eq!(SpaceUsage::default().space_efficiency(), 1.0);
    }

    #[test]
    fn exported_meta_survives_a_simulated_crash() {
        let mut m = mgr(5);
        let data = payload(40_000);
        let layout = m
            .store_object(
                7,
                ByteSize::from_bytes(data.len() as u64),
                RedundancyScheme::parity(2),
                Some(&data),
            )
            .unwrap();
        let usage_before = m.usage();
        let blob = m.export_object_meta(&layout).unwrap();

        m.simulate_crash();
        assert_eq!(m.stripe_count(), 0);
        assert_eq!(m.usage().total(), ByteSize::ZERO);

        let restored = m.install_object_meta(&blob).unwrap();
        assert_eq!(restored.owner(), 7);
        assert_eq!(restored.size().as_bytes(), data.len() as u64);
        assert_eq!(restored.stripes(), layout.stripes());
        assert_eq!(m.usage(), usage_before);
        assert!(m.double_allocated_chunks().is_empty());
        // Chunk contents survived on the array: the object reads back.
        let out = m.read_object(&restored).unwrap();
        assert_eq!(out.bytes.unwrap(), data);
        // A fresh store must not collide with reinstalled handles/stripes.
        let second = m
            .store_object(8, ByteSize::from_kib(32), RedundancyScheme::parity(1), None)
            .unwrap();
        assert!(m.double_allocated_chunks().is_empty());
        assert!(second
            .stripes()
            .iter()
            .all(|s| !layout.stripes().contains(s)));
    }

    #[test]
    fn orphan_chunks_are_collected_after_crash() {
        let mut m = mgr(5);
        let keep = m
            .store_object(1, ByteSize::from_kib(16), RedundancyScheme::parity(1), None)
            .unwrap();
        let orphaned = m
            .store_object(2, ByteSize::from_kib(16), RedundancyScheme::parity(1), None)
            .unwrap();
        let blob = m.export_object_meta(&keep).unwrap();
        m.simulate_crash();
        m.install_object_meta(&blob).unwrap();
        // Only `keep`'s metadata was journaled: `orphaned`'s chunks are
        // unreferenced and must be garbage collected.
        let removed = m.remove_unreferenced_chunks();
        assert!(removed > 0);
        let total_chunks: usize = (0..m.array().device_count())
            .map(|i| m.array().device(DeviceId(i)).chunk_count())
            .sum();
        assert_eq!(total_chunks, m.referenced_chunks().len());
        assert!(m.read_object(&keep).is_ok());
        drop(orphaned);
    }

    #[test]
    fn corrupt_meta_blobs_are_rejected() {
        let mut m = mgr(5);
        let layout = m
            .store_object(1, ByteSize::from_kib(16), RedundancyScheme::parity(1), None)
            .unwrap();
        let blob = m.export_object_meta(&layout).unwrap();
        assert!(matches!(
            m.install_object_meta(&blob[..blob.len() - 3]),
            Err(StripeError::CorruptMetadata)
        ));
        let mut garbage = blob.clone();
        garbage[16] = 0xFF; // scheme tag
        assert!(matches!(
            m.install_object_meta(&garbage),
            Err(StripeError::CorruptMetadata)
        ));
    }

    #[test]
    fn errors_have_sources_and_display() {
        let e = StripeError::Flash(FlashError::DeviceFailed(DeviceId(3)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("ssd3"));
        let e2 = StripeError::ObjectLost {
            stripe: StripeId(9),
            lost: 3,
            tolerated: 2,
        };
        assert!(e2.to_string().contains("stripe#9"));
    }
}

#[cfg(test)]
mod overwrite_tests {
    use super::*;
    use reo_flashsim::DeviceConfig;
    use reo_sim::{ServiceModel, SimClock, SimDuration};

    fn test_array(n: usize) -> FlashArray {
        let cfg = DeviceConfig {
            capacity: ByteSize::from_mib(64),
            read: ServiceModel::new(SimDuration::from_micros(100), 512 * 1024 * 1024),
            write: ServiceModel::new(SimDuration::from_micros(200), 512 * 1024 * 1024),
            erase_block: ByteSize::from_kib(128),
            pe_cycle_limit: 3000,
        };
        FlashArray::new(n, cfg, SimClock::new())
    }

    fn payload(len: usize, seed: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(7).wrapping_add(seed))
            .collect()
    }

    /// Overwrite each chunk in turn and verify the object reads back with
    /// the patch applied and parity still consistent (degraded read after
    /// a failure must succeed).
    #[test]
    fn overwrite_keeps_parity_consistent_for_all_chunks() {
        let chunk = ByteSize::from_kib(4);
        for k in 1..=2u8 {
            let mut m = StripeManager::new(test_array(5), chunk);
            let mut data = payload(20_000, k);
            let layout = m
                .store_object(
                    1,
                    ByteSize::from_bytes(data.len() as u64),
                    RedundancyScheme::parity(k),
                    Some(&data),
                )
                .unwrap();
            let chunks = (data.len() as u64).div_ceil(chunk.as_bytes());
            for ci in 0..chunks {
                let start = (ci * chunk.as_bytes()) as usize;
                let end = (start + chunk.as_bytes() as usize).min(data.len());
                let new_chunk = payload(end - start, k.wrapping_add(ci as u8 + 1));
                data[start..end].copy_from_slice(&new_chunk);
                m.overwrite_chunk(&layout, ci, Some(&new_chunk)).unwrap();

                // Parity must still reconstruct the patched data.
                let direct = m.read_object(&layout).unwrap();
                assert_eq!(direct.bytes.as_deref(), Some(&data[..]), "k={k} chunk={ci}");
            }
            // Now check degraded consistency: fail a device and re-read.
            m.fail_device(reo_flashsim::DeviceId(2));
            let degraded = m.read_object(&layout).unwrap();
            assert_eq!(degraded.bytes.as_deref(), Some(&data[..]), "k={k} degraded");
        }
    }

    #[test]
    fn strategy_follows_read_cost_rule() {
        // 5 devices, 1 parity: m = 4 data chunks per stripe. Delta reads
        // 1 + 1 = 2; direct reads m - 1 = 3 -> delta.
        let chunk = ByteSize::from_kib(4);
        let mut m = StripeManager::new(test_array(5), chunk);
        let data = payload(16_384, 1);
        let layout = m
            .store_object(
                1,
                ByteSize::from_bytes(data.len() as u64),
                RedundancyScheme::parity(1),
                Some(&data),
            )
            .unwrap();
        let (method, _) = m
            .overwrite_chunk(&layout, 0, Some(&payload(4096, 9)))
            .unwrap();
        assert_eq!(method, ParityUpdate::Delta);

        // 3 devices, 2 parity: m = 1 data chunk. Delta reads 3; direct
        // reads 0 -> direct.
        let mut m3 = StripeManager::new(test_array(3), chunk);
        let data3 = payload(4_096, 2);
        let layout3 = m3
            .store_object(
                1,
                ByteSize::from_bytes(data3.len() as u64),
                RedundancyScheme::parity(2),
                Some(&data3),
            )
            .unwrap();
        let (method3, _) = m3
            .overwrite_chunk(&layout3, 0, Some(&payload(4096, 5)))
            .unwrap();
        assert_eq!(method3, ParityUpdate::Direct);
    }

    #[test]
    fn replication_overwrite_rewrites_all_replicas() {
        let chunk = ByteSize::from_kib(4);
        let mut m = StripeManager::new(test_array(4), chunk);
        let data = payload(4_000, 3);
        let layout = m
            .store_object(
                1,
                ByteSize::from_bytes(data.len() as u64),
                RedundancyScheme::Replication,
                Some(&data),
            )
            .unwrap();
        let new_data = payload(4_000, 8);
        let (method, _) = m.overwrite_chunk(&layout, 0, Some(&new_data)).unwrap();
        assert_eq!(method, ParityUpdate::Rewrite);
        // Every replica carries the new bytes: any 3 failures still serve.
        for d in 0..3 {
            m.fail_device(reo_flashsim::DeviceId(d));
        }
        let out = m.read_object(&layout).unwrap();
        assert_eq!(out.bytes.as_deref(), Some(&new_data[..]));
    }

    #[test]
    fn zero_parity_overwrite_touches_one_chunk() {
        let chunk = ByteSize::from_kib(4);
        let mut m = StripeManager::new(test_array(5), chunk);
        let data = payload(12_000, 4);
        let layout = m
            .store_object(
                1,
                ByteSize::from_bytes(data.len() as u64),
                RedundancyScheme::parity(0),
                Some(&data),
            )
            .unwrap();
        let reads_before = m.array().stats().reads;
        let (method, _) = m
            .overwrite_chunk(&layout, 1, Some(&payload(4096, 6)))
            .unwrap();
        assert_eq!(method, ParityUpdate::Rewrite);
        assert_eq!(m.array().stats().reads, reads_before, "no reads needed");
    }

    #[test]
    fn overwrite_validates_inputs() {
        let chunk = ByteSize::from_kib(4);
        let mut m = StripeManager::new(test_array(5), chunk);
        let data = payload(8_192, 5);
        let layout = m
            .store_object(
                1,
                ByteSize::from_bytes(data.len() as u64),
                RedundancyScheme::parity(1),
                Some(&data),
            )
            .unwrap();
        // Wrong payload size.
        assert!(matches!(
            m.overwrite_chunk(&layout, 0, Some(&[1, 2, 3])),
            Err(StripeError::PayloadSizeMismatch { .. })
        ));
        // Degraded stripe refuses overwrite.
        m.fail_device(reo_flashsim::DeviceId(0));
        let degraded_any = (0..2).any(|ci| {
            matches!(
                m.overwrite_chunk(&layout, ci, Some(&payload(4096, 1))),
                Err(StripeError::ObjectLost { .. })
            )
        });
        assert!(degraded_any, "some chunk must be on the failed device");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn overwrite_bad_index_panics() {
        let chunk = ByteSize::from_kib(4);
        let mut m = StripeManager::new(test_array(5), chunk);
        let layout = m
            .store_object(1, ByteSize::from_kib(8), RedundancyScheme::parity(0), None)
            .unwrap();
        let _ = m.overwrite_chunk(&layout, 99, None);
    }

    #[test]
    fn synthetic_overwrite_charges_time() {
        let chunk = ByteSize::from_kib(4);
        let mut m = StripeManager::new(test_array(5), chunk);
        let layout = m
            .store_object(1, ByteSize::from_kib(16), RedundancyScheme::parity(2), None)
            .unwrap();
        let before = m.array().clock().now();
        let (_, done) = m.overwrite_chunk(&layout, 0, None).unwrap();
        assert!(done > before);
    }
}
