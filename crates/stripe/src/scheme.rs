//! Per-stripe redundancy schemes.

use std::fmt;

/// The redundancy level of a stripe (Figure 4 of the paper).
///
/// A stripe on an `n`-device array holds either `n - k` data chunks plus
/// `k` Reed–Solomon parity chunks (`Parity(k)`), or one data chunk
/// replicated to every device (`Replication`).
///
/// # Examples
///
/// ```
/// use reo_stripe::RedundancyScheme;
///
/// let two_parity = RedundancyScheme::parity(2);
/// assert_eq!(two_parity.parity_chunks(5), 2);
/// assert_eq!(two_parity.data_chunks_per_stripe(5), 3);
/// assert_eq!(two_parity.failures_tolerated(5), 2);
///
/// let repl = RedundancyScheme::Replication;
/// assert_eq!(repl.failures_tolerated(5), 4);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RedundancyScheme {
    /// `k` parity chunks per stripe. `Parity(0)` means no redundancy
    /// (Reo's cold clean data).
    Parity(u8),
    /// The data chunk is replicated across all devices (Reo's metadata and
    /// dirty data).
    Replication,
}

impl RedundancyScheme {
    /// Shorthand constructor for [`RedundancyScheme::Parity`].
    pub const fn parity(k: u8) -> Self {
        RedundancyScheme::Parity(k)
    }

    /// Number of parity chunks in a stripe on an `n`-device array.
    ///
    /// For replication this is `n - 1` (every chunk beyond the first is
    /// redundant).
    ///
    /// # Panics
    ///
    /// Panics if the scheme does not fit the array (`k >= n`).
    pub fn parity_chunks(self, n: usize) -> usize {
        match self {
            RedundancyScheme::Parity(k) => {
                assert!(
                    (k as usize) < n,
                    "parity count {k} needs more than {n} devices"
                );
                k as usize
            }
            RedundancyScheme::Replication => n - 1,
        }
    }

    /// Number of data chunks a stripe can hold on an `n`-device array.
    ///
    /// # Panics
    ///
    /// Panics if the scheme does not fit the array.
    pub fn data_chunks_per_stripe(self, n: usize) -> usize {
        match self {
            RedundancyScheme::Parity(k) => {
                assert!(
                    (k as usize) < n,
                    "parity count {k} needs more than {n} devices"
                );
                n - k as usize
            }
            RedundancyScheme::Replication => 1,
        }
    }

    /// How many whole-device failures a stripe under this scheme survives
    /// on an `n`-device array.
    pub fn failures_tolerated(self, n: usize) -> usize {
        match self {
            RedundancyScheme::Parity(k) => (k as usize).min(n.saturating_sub(1)),
            RedundancyScheme::Replication => n - 1,
        }
    }

    /// The fraction of stripe space holding user data (the scheme's ideal
    /// space efficiency): `m / n` for parity, `1 / n` for replication.
    pub fn space_efficiency(self, n: usize) -> f64 {
        match self {
            RedundancyScheme::Parity(k) => (n - k as usize) as f64 / n as f64,
            RedundancyScheme::Replication => 1.0 / n as f64,
        }
    }

    /// `true` if the scheme stores whole copies rather than parity.
    pub const fn is_replication(self) -> bool {
        matches!(self, RedundancyScheme::Replication)
    }
}

impl fmt::Display for RedundancyScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RedundancyScheme::Parity(k) => write!(f, "{k}-parity"),
            RedundancyScheme::Replication => write!(f, "full-replication"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_geometry() {
        let s = RedundancyScheme::parity(1);
        assert_eq!(s.parity_chunks(5), 1);
        assert_eq!(s.data_chunks_per_stripe(5), 4);
        assert_eq!(s.failures_tolerated(5), 1);
    }

    #[test]
    fn zero_parity_tolerates_nothing() {
        let s = RedundancyScheme::parity(0);
        assert_eq!(s.failures_tolerated(5), 0);
        assert_eq!(s.data_chunks_per_stripe(5), 5);
        assert_eq!(s.space_efficiency(5), 1.0);
    }

    #[test]
    fn replication_geometry() {
        let s = RedundancyScheme::Replication;
        assert_eq!(s.data_chunks_per_stripe(5), 1);
        assert_eq!(s.parity_chunks(5), 4);
        assert_eq!(s.failures_tolerated(5), 4);
        assert!((s.space_efficiency(5) - 0.2).abs() < 1e-12);
        assert!(s.is_replication());
    }

    #[test]
    fn paper_space_efficiency_numbers() {
        // Section VI-B: "for a five-device flash array, the space
        // efficiency of 0-parity is 100%, and that of 1-parity and
        // 2-parity is 80% and 60%".
        assert_eq!(RedundancyScheme::parity(0).space_efficiency(5), 1.00);
        assert_eq!(RedundancyScheme::parity(1).space_efficiency(5), 0.80);
        assert_eq!(RedundancyScheme::parity(2).space_efficiency(5), 0.60);
        // Section VI-D: full replication on 5 devices => 20%.
        assert_eq!(RedundancyScheme::Replication.space_efficiency(5), 0.20);
    }

    #[test]
    #[should_panic(expected = "needs more than")]
    fn parity_must_fit_array() {
        let _ = RedundancyScheme::parity(5).data_chunks_per_stripe(5);
    }

    #[test]
    fn display_names() {
        assert_eq!(RedundancyScheme::parity(2).to_string(), "2-parity");
        assert_eq!(
            RedundancyScheme::Replication.to_string(),
            "full-replication"
        );
    }
}
