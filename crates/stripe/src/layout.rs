//! Pure placement arithmetic for stripes.

use reo_flashsim::DeviceId;

use crate::scheme::RedundancyScheme;

/// The role a chunk plays within its stripe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ChunkRole {
    /// The `i`-th data chunk of the stripe.
    Data(usize),
    /// The `p`-th parity chunk of the stripe.
    Parity(usize),
    /// The `r`-th replica of the (single) data chunk of a replicated
    /// stripe. Replica 0 is the primary copy.
    Replica(usize),
}

impl ChunkRole {
    /// `true` for chunks that hold user data (including the primary
    /// replica).
    pub fn is_user_data(self) -> bool {
        matches!(self, ChunkRole::Data(_) | ChunkRole::Replica(0))
    }
}

/// Where parity chunks live across stripes.
///
/// Reo rotates parity round-robin "for an even distribution" (Section
/// IV-C.3). The fixed policy concentrates parity on the lowest devices —
/// the classic RAID-4 arrangement whose uneven write wear the Differential
/// RAID line of work warns about; it exists here as the ablation baseline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PlacementPolicy {
    /// Rotate parity with the stripe index (Reo's choice).
    #[default]
    RoundRobin,
    /// Pin parity to the first `k` devices (RAID-4-style baseline).
    Fixed,
}

/// Placement arithmetic for one stripe on an `n`-device array.
///
/// Under [`PlacementPolicy::RoundRobin`], stripe `s` places its `p`-th
/// parity chunk on device `(s + p) mod n`, and its `j`-th data chunk on
/// device `(s + k + j) mod n` where `k` is the parity count. Replicated
/// stripes place replica `r` on device `(s + r) mod n`.
///
/// # Examples
///
/// ```
/// use reo_stripe::{RedundancyScheme, StripeLayout};
/// use reo_flashsim::DeviceId;
///
/// let l = StripeLayout::new(7, RedundancyScheme::parity(2), 5);
/// // Stripe 7 on 5 devices: parity on devices 2 and 3, data on 4, 0, 1.
/// assert_eq!(l.parity_device(0), DeviceId(2));
/// assert_eq!(l.parity_device(1), DeviceId(3));
/// assert_eq!(l.data_device(0), DeviceId(4));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StripeLayout {
    stripe_index: u64,
    scheme: RedundancyScheme,
    devices: usize,
    placement: PlacementPolicy,
}

impl StripeLayout {
    /// Creates the layout of stripe `stripe_index` under `scheme` on a
    /// `devices`-wide array with round-robin parity.
    ///
    /// # Panics
    ///
    /// Panics if the scheme does not fit the array.
    pub fn new(stripe_index: u64, scheme: RedundancyScheme, devices: usize) -> Self {
        Self::with_placement(stripe_index, scheme, devices, PlacementPolicy::RoundRobin)
    }

    /// Creates the layout with an explicit parity placement policy.
    ///
    /// # Panics
    ///
    /// Panics if the scheme does not fit the array.
    pub fn with_placement(
        stripe_index: u64,
        scheme: RedundancyScheme,
        devices: usize,
        placement: PlacementPolicy,
    ) -> Self {
        // Validate geometry eagerly.
        let _ = scheme.data_chunks_per_stripe(devices);
        StripeLayout {
            stripe_index,
            scheme,
            devices,
            placement,
        }
    }

    /// The scheme this layout was built with.
    pub fn scheme(&self) -> RedundancyScheme {
        self.scheme
    }

    /// Number of data chunk slots in the stripe.
    pub fn data_slots(&self) -> usize {
        self.scheme.data_chunks_per_stripe(self.devices)
    }

    /// Number of parity/replica slots in the stripe.
    pub fn redundancy_slots(&self) -> usize {
        self.scheme.parity_chunks(self.devices)
    }

    fn rotation(&self) -> usize {
        match self.placement {
            PlacementPolicy::RoundRobin => (self.stripe_index % self.devices as u64) as usize,
            PlacementPolicy::Fixed => 0,
        }
    }

    /// Device holding the `j`-th data chunk.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range for the scheme.
    pub fn data_device(&self, j: usize) -> DeviceId {
        assert!(j < self.data_slots(), "data slot {j} out of range");
        match self.scheme {
            RedundancyScheme::Parity(k) => {
                DeviceId((self.rotation() + k as usize + j) % self.devices)
            }
            RedundancyScheme::Replication => DeviceId(self.rotation()),
        }
    }

    /// Device holding the `p`-th parity chunk (or `r`-th extra replica for
    /// replication, where `p = r - 1` for replicas beyond the primary).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range for the scheme.
    pub fn parity_device(&self, p: usize) -> DeviceId {
        assert!(p < self.redundancy_slots(), "parity slot {p} out of range");
        match self.scheme {
            RedundancyScheme::Parity(_) => DeviceId((self.rotation() + p) % self.devices),
            RedundancyScheme::Replication => DeviceId((self.rotation() + 1 + p) % self.devices),
        }
    }

    /// Every `(role, device)` pair of the stripe, data chunks first.
    pub fn placements(&self) -> Vec<(ChunkRole, DeviceId)> {
        let mut out = Vec::with_capacity(self.data_slots() + self.redundancy_slots());
        match self.scheme {
            RedundancyScheme::Parity(_) => {
                for j in 0..self.data_slots() {
                    out.push((ChunkRole::Data(j), self.data_device(j)));
                }
                for p in 0..self.redundancy_slots() {
                    out.push((ChunkRole::Parity(p), self.parity_device(p)));
                }
            }
            RedundancyScheme::Replication => {
                out.push((ChunkRole::Replica(0), self.data_device(0)));
                for r in 0..self.redundancy_slots() {
                    out.push((ChunkRole::Replica(r + 1), self.parity_device(r)));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_chunks_on_distinct_devices() {
        for scheme in [
            RedundancyScheme::parity(0),
            RedundancyScheme::parity(1),
            RedundancyScheme::parity(2),
            RedundancyScheme::Replication,
        ] {
            for s in 0..20u64 {
                let l = StripeLayout::new(s, scheme, 5);
                let devices: HashSet<DeviceId> =
                    l.placements().into_iter().map(|(_, d)| d).collect();
                assert_eq!(
                    devices.len(),
                    l.data_slots() + l.redundancy_slots(),
                    "scheme {scheme} stripe {s} reuses a device"
                );
            }
        }
    }

    #[test]
    fn parity_rotates_round_robin() {
        // Over n consecutive stripes, the 0th parity chunk visits every
        // device exactly once.
        let mut seen = HashSet::new();
        for s in 0..5u64 {
            let l = StripeLayout::new(s, RedundancyScheme::parity(1), 5);
            seen.insert(l.parity_device(0));
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn parity_load_is_even_over_many_stripes() {
        let mut counts = [0usize; 5];
        for s in 0..100u64 {
            let l = StripeLayout::new(s, RedundancyScheme::parity(2), 5);
            for p in 0..2 {
                counts[l.parity_device(p).0] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == 40), "{counts:?}");
    }

    #[test]
    fn replication_uses_every_device() {
        let l = StripeLayout::new(3, RedundancyScheme::Replication, 5);
        let placements = l.placements();
        assert_eq!(placements.len(), 5);
        assert!(matches!(placements[0].0, ChunkRole::Replica(0)));
        let devices: HashSet<DeviceId> = placements.iter().map(|&(_, d)| d).collect();
        assert_eq!(devices.len(), 5);
    }

    #[test]
    fn role_user_data_flag() {
        assert!(ChunkRole::Data(3).is_user_data());
        assert!(ChunkRole::Replica(0).is_user_data());
        assert!(!ChunkRole::Replica(1).is_user_data());
        assert!(!ChunkRole::Parity(0).is_user_data());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn data_slot_bound_checked() {
        let l = StripeLayout::new(0, RedundancyScheme::parity(2), 5);
        let _ = l.data_device(3);
    }

    #[test]
    fn fixed_placement_pins_parity() {
        // RAID-4 style: parity always on devices 0..k, data on the rest.
        for s in 0..20u64 {
            let l = StripeLayout::with_placement(
                s,
                RedundancyScheme::parity(2),
                5,
                PlacementPolicy::Fixed,
            );
            assert_eq!(l.parity_device(0), DeviceId(0), "stripe {s}");
            assert_eq!(l.parity_device(1), DeviceId(1), "stripe {s}");
            assert_eq!(l.data_device(0), DeviceId(2), "stripe {s}");
        }
    }

    #[test]
    fn fixed_placement_concentrates_parity_load() {
        let mut counts = [0usize; 5];
        for s in 0..100u64 {
            let l = StripeLayout::with_placement(
                s,
                RedundancyScheme::parity(1),
                5,
                PlacementPolicy::Fixed,
            );
            counts[l.parity_device(0).0] += 1;
        }
        assert_eq!(counts, [100, 0, 0, 0, 0]);
    }

    #[test]
    fn doc_example_layout() {
        let l = StripeLayout::new(7, RedundancyScheme::parity(2), 5);
        assert_eq!(l.parity_device(0), DeviceId(2));
        assert_eq!(l.parity_device(1), DeviceId(3));
        assert_eq!(l.data_device(0), DeviceId(4));
        assert_eq!(l.data_device(1), DeviceId(0));
        assert_eq!(l.data_device(2), DeviceId(1));
    }
}
