#![warn(missing_docs)]
//! Stripe and chunk layout management for the Reo flash array.
//!
//! Section IV-C.3 of the paper: the flash array's basic management unit is
//! a *stripe* with a unique stripe ID, divided into chunks that map to
//! devices individually. A chunk is either a data chunk or a parity chunk;
//! parity chunks rotate round-robin across devices; and — unlike RAID — a
//! stripe may contain a *variable* number of parity chunks (0, 1, 2, …) or
//! be fully replicated. That per-stripe flexibility is what lets Reo give
//! each object class its own redundancy level.
//!
//! This crate provides:
//!
//! * [`RedundancyScheme`] — parity count or full replication, with space
//!   overhead math.
//! * [`StripeLayout`] — pure placement arithmetic: which device holds the
//!   j-th data chunk / p-th parity chunk of stripe *s* on an *n*-device
//!   array, with round-robin parity rotation.
//! * [`StripeManager`] — the stateful layer over a
//!   [`reo_flashsim::FlashArray`]: stores objects as stripes, reads them
//!   back (degraded reads included), reports per-object health after
//!   failures, rebuilds stripes onto spares, and accounts user vs
//!   redundancy bytes for the space-efficiency metric.
//!
//! # Examples
//!
//! ```
//! use reo_flashsim::{DeviceConfig, FlashArray};
//! use reo_sim::{ByteSize, SimClock};
//! use reo_stripe::{RedundancyScheme, StripeManager};
//!
//! let array = FlashArray::new(5, DeviceConfig::intel_540s(), SimClock::new());
//! let mut mgr = StripeManager::new(array, ByteSize::from_kib(64));
//! let layout = mgr.store_object(1, ByteSize::from_kib(300), RedundancyScheme::parity(2), None)?;
//! let outcome = mgr.read_object(&layout)?;
//! assert!(!outcome.degraded);
//! # Ok::<(), reo_stripe::StripeError>(())
//! ```

mod layout;
mod manager;
mod scheme;

pub use layout::{ChunkRole, PlacementPolicy, StripeLayout};
pub use manager::{
    ObjectLayout, ObjectStatus, ParityUpdate, ReadOutcome, SpaceUsage, StripeError, StripeId,
    StripeManager,
};
pub use scheme::RedundancyScheme;
