//! Property tests: random operation sequences against the stripe manager
//! must preserve its invariants.

use proptest::prelude::*;
use reo_flashsim::{DeviceConfig, DeviceId, FlashArray};
use reo_sim::{ByteSize, ServiceModel, SimClock, SimDuration};
use reo_stripe::{ObjectLayout, ObjectStatus, RedundancyScheme, StripeError, StripeManager};

fn test_array(n: usize) -> FlashArray {
    let cfg = DeviceConfig {
        capacity: ByteSize::from_mib(256),
        read: ServiceModel::new(SimDuration::from_micros(100), 512 * 1024 * 1024),
        write: ServiceModel::new(SimDuration::from_micros(200), 512 * 1024 * 1024),
        erase_block: ByteSize::from_kib(128),
        pe_cycle_limit: 3000,
    };
    FlashArray::new(n, cfg, SimClock::new())
}

/// One step of a random workload against the manager.
#[derive(Clone, Debug)]
enum Op {
    Store { size_kib: u64, scheme: u8 },
    Read { slot: usize },
    Remove { slot: usize },
    FailDevice { device: usize },
    ReplaceAndRebuild { device: usize },
    Overwrite { slot: usize, chunk: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..200, 0u8..4).prop_map(|(size_kib, scheme)| Op::Store { size_kib, scheme }),
        (0usize..16).prop_map(|slot| Op::Read { slot }),
        (0usize..16).prop_map(|slot| Op::Remove { slot }),
        (0usize..5).prop_map(|device| Op::FailDevice { device }),
        (0usize..5).prop_map(|device| Op::ReplaceAndRebuild { device }),
        (0usize..16, 0u64..4).prop_map(|(slot, chunk)| Op::Overwrite { slot, chunk }),
    ]
}

fn scheme_of(code: u8) -> RedundancyScheme {
    match code {
        0 => RedundancyScheme::parity(0),
        1 => RedundancyScheme::parity(1),
        2 => RedundancyScheme::parity(2),
        _ => RedundancyScheme::Replication,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever happens — stores, removals, failures, spares, rebuilds,
    /// overwrites — the manager's byte accounting never goes negative,
    /// its status reports never panic, simulated time never rewinds, and
    /// removing everything at the end returns the accounting to zero.
    #[test]
    fn random_ops_preserve_invariants(ops in proptest::collection::vec(arb_op(), 1..80)) {
        let mut mgr = StripeManager::new(test_array(5), ByteSize::from_kib(16));
        let mut live: Vec<ObjectLayout> = Vec::new();
        let mut owner = 0u64;
        let mut last_time = mgr.array().clock().now();

        for op in ops {
            match op {
                Op::Store { size_kib, scheme } => {
                    owner += 1;
                    match mgr.store_object(
                        owner,
                        ByteSize::from_kib(size_kib),
                        scheme_of(scheme),
                        None,
                    ) {
                        Ok(layout) => {
                            if live.len() < 16 {
                                live.push(layout);
                            } else {
                                let removed = live.swap_remove(0);
                                mgr.remove_object(&removed);
                                live.push(layout);
                            }
                        }
                        Err(StripeError::Flash(_)) | Err(StripeError::NoHealthyDevices) => {}
                        Err(e) => return Err(TestCaseError::fail(format!("store: {e}"))),
                    }
                }
                Op::Read { slot } => {
                    if let Some(layout) = live.get(slot) {
                        match mgr.read_object(layout) {
                            Ok(_) | Err(StripeError::ObjectLost { .. }) => {}
                            Err(StripeError::Flash(_)) => {}
                            Err(e) => return Err(TestCaseError::fail(format!("read: {e}"))),
                        }
                    }
                }
                Op::Remove { slot } => {
                    if slot < live.len() {
                        let layout = live.swap_remove(slot);
                        mgr.remove_object(&layout);
                    }
                }
                Op::FailDevice { device } => {
                    mgr.fail_device(DeviceId(device));
                }
                Op::ReplaceAndRebuild { device } => {
                    mgr.replace_device(DeviceId(device));
                    // Rebuild what can be rebuilt; drop what cannot.
                    let mut keep = Vec::new();
                    for layout in live.drain(..) {
                        match mgr.object_status(&layout) {
                            Ok(ObjectStatus::Lost) | Err(_) => {
                                mgr.remove_object(&layout);
                            }
                            Ok(ObjectStatus::Degraded) => {
                                match mgr.rebuild_object(&layout) {
                                    Ok(_) => keep.push(layout),
                                    Err(_) => {
                                        mgr.remove_object(&layout);
                                    }
                                }
                            }
                            Ok(ObjectStatus::Intact) => keep.push(layout),
                        }
                    }
                    live = keep;
                }
                Op::Overwrite { slot, chunk } => {
                    if let Some(layout) = live.get(slot) {
                        let chunks = layout.size().div_ceil(mgr.chunk_size());
                        if chunk < chunks {
                            match mgr.overwrite_chunk(layout, chunk, None) {
                                Ok(_)
                                | Err(StripeError::ObjectLost { .. })
                                | Err(StripeError::Flash(_)) => {}
                                Err(e) => {
                                    return Err(TestCaseError::fail(format!("overwrite: {e}")))
                                }
                            }
                        }
                    }
                }
            }

            // Invariants that must hold after every step.
            let now = mgr.array().clock().now();
            prop_assert!(now >= last_time, "simulated time went backwards");
            last_time = now;
            let usage = mgr.usage();
            prop_assert!(usage.total() >= usage.user_bytes);
            let eff = usage.space_efficiency();
            prop_assert!((0.0..=1.0).contains(&eff), "efficiency {eff} out of range");
            for layout in &live {
                // Status must be computable for every live object.
                prop_assert!(mgr.object_status(layout).is_ok());
            }
        }

        // Drain: all accounting returns to zero.
        for layout in live.drain(..) {
            mgr.remove_object(&layout);
        }
        prop_assert_eq!(mgr.usage().total(), ByteSize::ZERO);
        prop_assert_eq!(mgr.stripe_count(), 0);
    }

    /// Real payloads survive any single-device failure for every scheme
    /// that tolerates one, across random sizes.
    #[test]
    fn single_failure_payload_integrity(
        size in 1usize..100_000,
        victim in 0usize..5,
        scheme in 1u8..4,
        seed: u64,
    ) {
        let mut mgr = StripeManager::new(test_array(5), ByteSize::from_kib(8));
        let data: Vec<u8> = (0..size)
            .map(|i| (seed.wrapping_add(i as u64).wrapping_mul(2654435761) >> 24) as u8)
            .collect();
        let layout = mgr
            .store_object(1, ByteSize::from_bytes(size as u64), scheme_of(scheme), Some(&data))
            .expect("store");
        mgr.fail_device(DeviceId(victim));
        let out = mgr.read_object(&layout).expect("schemes with k >= 1 survive one failure");
        prop_assert_eq!(out.bytes.as_deref(), Some(&data[..]));
    }

    /// The Reed–Solomon tolerance boundary is exact: corrupting any
    /// subset of a stripe's data chunks no larger than its parity count
    /// `m` reads back byte-for-byte; any larger subset errors out —
    /// never silently wrong data.
    #[test]
    fn parity_tolerance_boundary_is_exact(
        m in 1u8..3,
        mask in 0u32..32,
        seed: u64,
    ) {
        let mut mgr = StripeManager::new(test_array(5), ByteSize::from_kib(8));
        // Size the object to exactly one full (5 - m) + m stripe.
        let data_chunks = 5 - m as usize;
        let size = data_chunks * 8 * 1024;
        let data: Vec<u8> = (0..size)
            .map(|i| (seed.wrapping_add(i as u64).wrapping_mul(2654435761) >> 24) as u8)
            .collect();
        let layout = mgr
            .store_object(
                1,
                ByteSize::from_bytes(size as u64),
                RedundancyScheme::parity(m),
                Some(&data),
            )
            .expect("store");

        let victims: Vec<u64> = (0..data_chunks as u64)
            .filter(|i| mask & (1 << i) != 0)
            .collect();
        for &v in &victims {
            mgr.corrupt_data_chunk(&layout, v).expect("corrupt");
        }

        match mgr.read_object(&layout) {
            Ok(out) => {
                prop_assert!(
                    victims.len() <= m as usize,
                    "{} corruptions must exceed {} parity",
                    victims.len(),
                    m
                );
                prop_assert_eq!(out.bytes.as_deref(), Some(&data[..]));
                prop_assert_eq!(out.degraded, !victims.is_empty());
            }
            Err(StripeError::ObjectLost { .. }) => {
                prop_assert!(
                    victims.len() > m as usize,
                    "{} corruptions within {} parity must be repairable",
                    victims.len(),
                    m
                );
            }
            Err(e) => return Err(TestCaseError::fail(format!("read: {e}"))),
        }
    }
}
