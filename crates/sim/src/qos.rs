//! Deterministic QoS primitives for background-work throttling.
//!
//! [`TokenBucket`] meters background traffic (e.g. rebuild I/O) against a
//! byte-per-second budget of simulated time. It is driven entirely by
//! [`SimTime`] instants, so refills are exactly reproducible: two buckets
//! fed the same instants and charges hold the same token balance.

use crate::size::ByteSize;
use crate::time::SimTime;

/// A byte-granularity token bucket over simulated time.
///
/// The bucket refills continuously at `rate` bytes per simulated second,
/// capped at `burst` bytes. Work is admitted while the balance is
/// positive; a charge may drive the balance negative (callers often only
/// learn the true cost of an operation after performing it), and the debt
/// is paid back by subsequent refills before new work is admitted.
///
/// # Examples
///
/// ```
/// use reo_sim::{ByteSize, SimDuration, SimTime, TokenBucket};
///
/// // 10 MiB/s budget, 1 MiB burst.
/// let mut bucket = TokenBucket::new(10 << 20, ByteSize::from_mib(1), SimTime::ZERO);
/// assert!(bucket.has_tokens());
/// bucket.charge(ByteSize::from_mib(2)); // overdraft allowed
/// assert!(!bucket.has_tokens());
/// // 100 ms at 10 MiB/s refills 1 MiB: still in debt.
/// bucket.refill(SimTime::ZERO + SimDuration::from_millis(100));
/// assert!(!bucket.has_tokens());
/// bucket.refill(SimTime::ZERO + SimDuration::from_millis(200));
/// assert!(bucket.has_tokens());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct TokenBucket {
    rate_bytes_per_sec: u64,
    burst_bytes: i128,
    /// Current balance in bytes; negative while in overdraft.
    tokens: i128,
    last_refill: SimTime,
    /// Sub-second refill remainder in byte-nanoseconds, carried so long
    /// refill sequences lose nothing to integer division.
    carry_byte_nanos: u128,
}

impl TokenBucket {
    /// Creates a bucket that starts full.
    ///
    /// # Panics
    ///
    /// Panics if `rate_bytes_per_sec` or `burst` is zero.
    pub fn new(rate_bytes_per_sec: u64, burst: ByteSize, now: SimTime) -> Self {
        assert!(rate_bytes_per_sec > 0, "throttle rate must be non-zero");
        assert!(!burst.is_zero(), "burst must be non-zero");
        TokenBucket {
            rate_bytes_per_sec,
            burst_bytes: burst.as_bytes() as i128,
            tokens: burst.as_bytes() as i128,
            last_refill: now,
            carry_byte_nanos: 0,
        }
    }

    /// The configured refill rate in bytes per simulated second.
    pub fn rate_bytes_per_sec(&self) -> u64 {
        self.rate_bytes_per_sec
    }

    /// Changes the refill rate (the adaptive throttle opening up when the
    /// foreground goes idle). Takes effect from the next [`refill`].
    ///
    /// [`refill`]: TokenBucket::refill
    ///
    /// # Panics
    ///
    /// Panics if `rate_bytes_per_sec` is zero.
    pub fn set_rate(&mut self, rate_bytes_per_sec: u64) {
        assert!(rate_bytes_per_sec > 0, "throttle rate must be non-zero");
        self.rate_bytes_per_sec = rate_bytes_per_sec;
    }

    /// The current balance, clamped at zero (debt reads as empty).
    pub fn available(&self) -> ByteSize {
        ByteSize::from_bytes(self.tokens.max(0) as u64)
    }

    /// `true` while the balance is positive — the gate for starting one
    /// more unit of background work.
    pub fn has_tokens(&self) -> bool {
        self.tokens > 0
    }

    /// Accrues tokens for the simulated time elapsed since the last
    /// refill, capped at the burst size. Time never moves backwards; a
    /// stale `now` is a no-op.
    pub fn refill(&mut self, now: SimTime) {
        let elapsed = now.saturating_since(self.last_refill);
        if elapsed.as_nanos() == 0 {
            return;
        }
        self.last_refill = now;
        let byte_nanos =
            elapsed.as_nanos() as u128 * self.rate_bytes_per_sec as u128 + self.carry_byte_nanos;
        let earned = byte_nanos / 1_000_000_000;
        self.carry_byte_nanos = byte_nanos % 1_000_000_000;
        self.tokens = (self.tokens + earned as i128).min(self.burst_bytes);
    }

    /// Charges `bytes` of completed work against the balance. May drive
    /// the balance negative (overdraft); [`has_tokens`] stays `false`
    /// until refills repay the debt.
    ///
    /// [`has_tokens`]: TokenBucket::has_tokens
    pub fn charge(&mut self, bytes: ByteSize) {
        self.tokens -= bytes.as_bytes() as i128;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn starts_full_and_admits_until_overdraft() {
        let mut b = TokenBucket::new(1 << 20, ByteSize::from_kib(64), SimTime::ZERO);
        assert_eq!(b.available(), ByteSize::from_kib(64));
        assert!(b.has_tokens());
        b.charge(ByteSize::from_kib(64));
        assert!(!b.has_tokens());
        assert_eq!(b.available(), ByteSize::ZERO);
        // Debt reads as empty, not negative.
        b.charge(ByteSize::from_kib(64));
        assert_eq!(b.available(), ByteSize::ZERO);
    }

    #[test]
    fn refill_is_proportional_and_capped() {
        // 1 MiB/s, 256 KiB burst.
        let mut b = TokenBucket::new(1 << 20, ByteSize::from_kib(256), SimTime::ZERO);
        b.charge(ByteSize::from_kib(256));
        b.refill(at(125)); // 125 ms at 1 MiB/s = 128 KiB
        assert_eq!(b.available(), ByteSize::from_kib(128));
        b.refill(at(10_000)); // far past the cap
        assert_eq!(b.available(), ByteSize::from_kib(256), "capped at burst");
    }

    #[test]
    fn debt_must_be_repaid_before_tokens_flow() {
        let mut b = TokenBucket::new(1 << 20, ByteSize::from_kib(64), SimTime::ZERO);
        b.charge(ByteSize::from_kib(128)); // 64 KiB of debt
        b.refill(at(62)); // ~63.5 KiB earned: still in debt
        assert!(!b.has_tokens());
        b.refill(at(80)); // ~80 KiB earned in total: repaid + positive
        assert!(b.has_tokens());
    }

    #[test]
    fn sub_second_remainders_are_not_lost() {
        // 3 bytes/s: each 100 ms refill earns 0.3 bytes; ten of them must
        // sum to exactly 3 bytes.
        let mut b = TokenBucket::new(3, ByteSize::from_bytes(100), SimTime::ZERO);
        b.charge(ByteSize::from_bytes(100));
        for step in 1..=10u64 {
            b.refill(at(step * 100));
        }
        assert_eq!(b.available(), ByteSize::from_bytes(3));
    }

    #[test]
    fn stale_refill_is_a_no_op() {
        let mut b = TokenBucket::new(1 << 20, ByteSize::from_kib(64), at(100));
        b.charge(ByteSize::from_kib(64));
        b.refill(at(50)); // earlier than last_refill
        assert_eq!(b.available(), ByteSize::ZERO);
    }

    #[test]
    fn rate_change_applies_to_later_refills() {
        let mut b = TokenBucket::new(1 << 20, ByteSize::from_mib(4), SimTime::ZERO);
        b.charge(ByteSize::from_mib(4));
        b.set_rate(4 << 20);
        b.refill(at(250)); // 250 ms at 4 MiB/s = 1 MiB
        assert_eq!(b.available(), ByteSize::from_mib(1));
        assert_eq!(b.rate_bytes_per_sec(), 4 << 20);
    }

    #[test]
    fn equal_drive_sequences_hold_equal_balances() {
        let mut a = TokenBucket::new(7 << 19, ByteSize::from_kib(96), SimTime::ZERO);
        let mut b = a;
        for step in 0..50u64 {
            a.refill(at(step * 37));
            a.charge(ByteSize::from_kib(step % 5));
            b.refill(at(step * 37));
            b.charge(ByteSize::from_kib(step % 5));
            assert_eq!(a.available(), b.available());
            assert_eq!(a.has_tokens(), b.has_tokens());
        }
    }
}
