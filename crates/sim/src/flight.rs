//! Black-box flight recorder: a bounded ring of structured control-plane
//! events with deterministic post-mortem dumps.
//!
//! Where the [`crate::Tracer`] answers "where did this request's time
//! go", the flight recorder answers "what was the system doing when
//! things went wrong". Every rare, state-changing event — health
//! transitions, fault injections, rejected events, journal replays,
//! rebalance batches, replica-divergence detections
//! (`replica-divergence`, `divergence-injected`), and failback
//! milestones (`target-restored`, `failback-complete`) — is recorded
//! into a bounded ring, so a postmortem shows the full
//! outage → failover → repair → failback arc. When a trigger fires (a
//! target leaves `Healthy`, an internal error is detected), the
//! recorder snapshots the ring into a [`Postmortem`]: the last N events
//! leading up to the trigger, in order, stamped with simulated time.
//!
//! The recorder is *always on*: control-plane events are rare (a handful
//! per run, not per request), so recording them costs nothing on the
//! request path. All state is ordered and simulated-time-stamped, so two
//! runs with the same seed produce byte-identical postmortems.
//!
//! A [`FlightRecorder`] handle is cheap to clone; clones share the ring.
//! [`FlightRecorder::with_target`] derives a handle that stamps every
//! event with a target id, so a cluster can hand each node a tagged view
//! of one shared recorder.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::time::SimTime;

/// One structured control-plane event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotonic sequence number (never reused, survives ring wrap).
    pub seq: u64,
    /// When the event fired (simulated).
    pub at: SimTime,
    /// The target the recording handle was tagged with; -1 for
    /// cluster-scoped or single-system events.
    pub target: i64,
    /// A static event kind, e.g. `"health-transition"`, `"fault-injected"`.
    pub kind: &'static str,
    /// Free-form detail built from deterministic values only.
    pub detail: String,
}

/// A snapshot of the event ring taken when a trigger fired.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Postmortem {
    /// When the trigger fired (simulated).
    pub at: SimTime,
    /// The target the triggering handle was tagged with; -1 for
    /// cluster-scoped triggers.
    pub target: i64,
    /// Why the dump happened, e.g. `"health-degraded"`, `"internal-error"`.
    pub trigger: String,
    /// Events that had already fallen off the ring by dump time.
    pub dropped_events: u64,
    /// The retained events leading up to the trigger, oldest first.
    pub events: Vec<FlightEvent>,
}

#[derive(Debug)]
struct FlightInner {
    ring: VecDeque<FlightEvent>,
    ring_cap: usize,
    seq: u64,
    dropped: u64,
    postmortems: Vec<Postmortem>,
    postmortem_cap: usize,
    postmortems_dropped: u64,
}

impl FlightInner {
    fn record(&mut self, at: SimTime, target: i64, kind: &'static str, detail: String) {
        self.seq += 1;
        if self.ring.len() == self.ring_cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(FlightEvent {
            seq: self.seq,
            at,
            target,
            kind,
            detail,
        });
    }
}

/// Events retained in the ring (the lookback window of a postmortem).
const DEFAULT_RING_EVENTS: usize = 256;

/// Postmortems retained per run; later triggers only count.
const DEFAULT_POSTMORTEMS: usize = 16;

/// A cloneable handle to a shared flight recorder (see the module docs).
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    shared: Arc<Mutex<FlightInner>>,
    target: i64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// Creates an empty recorder tagged as cluster-scoped (`target = -1`).
    pub fn new() -> Self {
        FlightRecorder {
            shared: Arc::new(Mutex::new(FlightInner {
                ring: VecDeque::with_capacity(DEFAULT_RING_EVENTS),
                ring_cap: DEFAULT_RING_EVENTS,
                seq: 0,
                dropped: 0,
                postmortems: Vec::new(),
                postmortem_cap: DEFAULT_POSTMORTEMS,
                postmortems_dropped: 0,
            })),
            target: -1,
        }
    }

    /// A handle to the same ring that stamps events with `target`.
    pub fn with_target(&self, target: i64) -> Self {
        FlightRecorder {
            shared: Arc::clone(&self.shared),
            target,
        }
    }

    /// The target id this handle stamps onto events.
    pub fn target(&self) -> i64 {
        self.target
    }

    /// `true` when both handles share the same ring.
    pub fn same_ring(&self, other: &FlightRecorder) -> bool {
        Arc::ptr_eq(&self.shared, &other.shared)
    }

    /// Records one event.
    pub fn record(&self, at: SimTime, kind: &'static str, detail: impl Into<String>) {
        let mut inner = self.shared.lock().expect("flight lock");
        let target = self.target;
        inner.record(at, target, kind, detail.into());
    }

    /// Snapshots the ring into a [`Postmortem`]. The dump itself is also
    /// recorded as a `"postmortem"` event so later dumps see earlier
    /// triggers in their lookback window.
    pub fn dump(&self, at: SimTime, trigger: impl Into<String>) {
        let trigger = trigger.into();
        let mut inner = self.shared.lock().expect("flight lock");
        let snapshot = Postmortem {
            at,
            target: self.target,
            trigger: trigger.clone(),
            dropped_events: inner.dropped,
            events: inner.ring.iter().cloned().collect(),
        };
        if inner.postmortems.len() < inner.postmortem_cap {
            inner.postmortems.push(snapshot);
        } else {
            inner.postmortems_dropped += 1;
        }
        let target = self.target;
        inner.record(at, target, "postmortem", trigger);
    }

    /// The events currently in the ring, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        let inner = self.shared.lock().expect("flight lock");
        inner.ring.iter().cloned().collect()
    }

    /// Total events recorded since the last reset (including those that
    /// have fallen off the ring).
    pub fn recorded(&self) -> u64 {
        self.shared.lock().expect("flight lock").seq
    }

    /// The retained postmortem dumps, in trigger order.
    pub fn postmortems(&self) -> Vec<Postmortem> {
        self.shared.lock().expect("flight lock").postmortems.clone()
    }

    /// Dumps that were discarded because the postmortem store was full.
    pub fn postmortems_dropped(&self) -> u64 {
        self.shared.lock().expect("flight lock").postmortems_dropped
    }

    /// Clears the ring, counters and retained postmortems (e.g. at the
    /// end of warm-up).
    pub fn reset(&self) {
        let mut inner = self.shared.lock().expect("flight lock");
        inner.ring.clear();
        inner.seq = 0;
        inner.dropped = 0;
        inner.postmortems.clear();
        inner.postmortems_dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1_000)
    }

    #[test]
    fn records_and_dumps_in_order() {
        let fr = FlightRecorder::new();
        fr.record(t(1), "fault-injected", "device 2 slow");
        fr.record(t(2), "health-transition", "healthy -> degraded");
        fr.dump(t(2), "health-degraded");
        let pm = fr.postmortems();
        assert_eq!(pm.len(), 1);
        assert_eq!(pm[0].trigger, "health-degraded");
        assert_eq!(pm[0].events.len(), 2);
        assert_eq!(pm[0].events[0].seq, 1);
        assert_eq!(pm[0].events[1].kind, "health-transition");
        // The dump itself lands in the ring for later triggers.
        assert_eq!(fr.events().last().unwrap().kind, "postmortem");
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let fr = FlightRecorder::new();
        for i in 0..(DEFAULT_RING_EVENTS as u64 + 7) {
            fr.record(t(i), "tick", format!("event {i}"));
        }
        let events = fr.events();
        assert_eq!(events.len(), DEFAULT_RING_EVENTS);
        assert_eq!(events[0].seq, 8);
        fr.dump(t(999), "overflow-check");
        assert_eq!(fr.postmortems()[0].dropped_events, 7);
    }

    #[test]
    fn tagged_handles_share_the_ring() {
        let fr = FlightRecorder::new();
        let node = fr.with_target(3);
        assert!(fr.same_ring(&node));
        node.record(t(5), "journal-replay", "replayed 12 records");
        let events = fr.events();
        assert_eq!(events[0].target, 3);
        node.dump(t(6), "internal-error");
        assert_eq!(fr.postmortems()[0].target, 3);
    }

    #[test]
    fn postmortem_store_is_bounded() {
        let fr = FlightRecorder::new();
        for i in 0..(DEFAULT_POSTMORTEMS as u64 + 3) {
            fr.dump(t(i), format!("trigger {i}"));
        }
        assert_eq!(fr.postmortems().len(), DEFAULT_POSTMORTEMS);
        assert_eq!(fr.postmortems_dropped(), 3);
    }

    #[test]
    fn reset_clears_everything() {
        let fr = FlightRecorder::new();
        fr.record(t(1), "tick", "x");
        fr.dump(t(2), "trigger");
        fr.reset();
        assert!(fr.events().is_empty());
        assert!(fr.postmortems().is_empty());
        assert_eq!(fr.recorded(), 0);
    }
}
