//! Online statistics for simulation measurements.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{ByteSize, SimDuration, SimTime};

/// Running mean/variance/min/max accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use reo_sim::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0.0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.count,
            self.mean(),
            self.std_dev(),
            self.min().unwrap_or(0.0),
            self.max().unwrap_or(0.0)
        )
    }
}

/// A log-bucketed latency histogram with percentile queries.
///
/// Buckets grow geometrically (each ~9.05% wider than the previous, 100
/// buckets per decade), covering 1 ns to ~10^4 s. Memory is constant;
/// percentile error is bounded by the bucket width (<10%).
///
/// # Examples
///
/// ```
/// use reo_sim::{Histogram, SimDuration};
///
/// let mut h = Histogram::new();
/// for ms in 1..=100 {
///     h.record(SimDuration::from_millis(ms));
/// }
/// let p50 = h.percentile(50.0).unwrap();
/// assert!(p50 >= SimDuration::from_millis(45) && p50 <= SimDuration::from_millis(56));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Histogram {
    // 100 buckets per decade over 13 decades (1ns .. 10^13 ns).
    counts: Vec<u64>,
    total: u64,
    sum_nanos: u128,
}

const BUCKETS_PER_DECADE: usize = 100;
const DECADES: usize = 13;

/// Lower bound of every bucket: `BOUNDS[i] = ceil(10^(i/100))`. Built
/// once so the record path needs only `ilog10` plus a binary search of
/// one decade's 100 boundaries — no per-observation `log10` libm call
/// (the histogram sits on the tracer's span hot path).
fn bucket_bounds() -> &'static [u64; BUCKETS_PER_DECADE * DECADES] {
    use std::sync::OnceLock;
    static BOUNDS: OnceLock<[u64; BUCKETS_PER_DECADE * DECADES]> = OnceLock::new();
    BOUNDS.get_or_init(|| {
        let mut bounds = [0u64; BUCKETS_PER_DECADE * DECADES];
        for (i, b) in bounds.iter_mut().enumerate() {
            *b = 10f64.powf(i as f64 / BUCKETS_PER_DECADE as f64).ceil() as u64;
        }
        bounds
    })
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS_PER_DECADE * DECADES],
            total: 0,
            sum_nanos: 0,
        }
    }

    fn bucket_index(nanos: u64) -> usize {
        if nanos <= 1 {
            return 0;
        }
        let decade = nanos.ilog10() as usize;
        if decade >= DECADES {
            return BUCKETS_PER_DECADE * DECADES - 1;
        }
        let base = decade * BUCKETS_PER_DECADE;
        let window = &bucket_bounds()[base..base + BUCKETS_PER_DECADE];
        // `nanos >= 10^decade` makes the first boundary always pass, but
        // clamp anyway: a one-ulp-high `powf` at a decade edge must not
        // underflow the subtraction.
        base + window.partition_point(|&lb| lb <= nanos).max(1) - 1
    }

    fn bucket_upper_bound(index: usize) -> u64 {
        10f64.powf((index + 1) as f64 / BUCKETS_PER_DECADE as f64) as u64
    }

    /// Records one latency observation.
    pub fn record(&mut self, d: SimDuration) {
        let nanos = d.as_nanos();
        self.counts[Self::bucket_index(nanos)] += 1;
        self.total += 1;
        self.sum_nanos += nanos as u128;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency, or `None` when empty.
    pub fn mean(&self) -> Option<SimDuration> {
        if self.total == 0 {
            return None;
        }
        Some(SimDuration::from_nanos(
            (self.sum_nanos / self.total as u128) as u64,
        ))
    }

    /// The latency at percentile `p` (0–100), or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<SimDuration> {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
        if self.total == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(SimDuration::from_nanos(Self::bucket_upper_bound(i)));
            }
        }
        None
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_nanos += other.sum_nanos;
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Tracks bytes transferred over simulated time and reports a rate.
///
/// # Examples
///
/// ```
/// use reo_sim::{ByteSize, RateMeter, SimTime};
///
/// let mut m = RateMeter::new(SimTime::ZERO);
/// m.record(ByteSize::from_mib(100));
/// let now = SimTime::from_nanos(1_000_000_000); // 1 simulated second
/// assert!((m.mib_per_sec(now) - 100.0).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RateMeter {
    started_at: SimTime,
    bytes: ByteSize,
}

impl RateMeter {
    /// Creates a meter that starts counting at `start`.
    pub fn new(start: SimTime) -> Self {
        RateMeter {
            started_at: start,
            bytes: ByteSize::ZERO,
        }
    }

    /// Adds transferred bytes.
    pub fn record(&mut self, bytes: ByteSize) {
        self.bytes += bytes;
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> ByteSize {
        self.bytes
    }

    /// Instant the meter started counting.
    pub fn started_at(&self) -> SimTime {
        self.started_at
    }

    /// Average rate in MiB per simulated second between start and `now`.
    /// Returns 0.0 if no time has elapsed.
    pub fn mib_per_sec(&self, now: SimTime) -> f64 {
        let elapsed = now.saturating_since(self.started_at).as_secs_f64();
        if elapsed <= 0.0 {
            return 0.0;
        }
        self.bytes.as_mib_f64() / elapsed
    }

    /// Resets the meter to start counting again at `now`.
    pub fn reset(&mut self, now: SimTime) {
        self.started_at = now;
        self.bytes = ByteSize::ZERO;
    }
}

/// A named series of `(x, y)` measurement points, e.g. one line on a figure.
///
/// The experiment binaries assemble one `WindowedSeries` per protection
/// scheme per metric and print them as the rows of the corresponding paper
/// figure.
///
/// # Examples
///
/// ```
/// use reo_sim::WindowedSeries;
///
/// let mut s = WindowedSeries::new("Reo-20%");
/// s.push(4.0, 61.2);
/// s.push(6.0, 69.8);
/// assert_eq!(s.points().len(), 2);
/// assert_eq!(s.name(), "Reo-20%");
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WindowedSeries {
    name: String,
    points: Vec<(f64, f64)>,
}

impl WindowedSeries {
    /// Creates an empty series with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        WindowedSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The series name (legend label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a measurement point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The recorded points, in insertion order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// The `y` value recorded for a given `x`, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (*px - x).abs() < 1e-9)
            .map(|(_, y)| *y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_mean_and_variance() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_empty_behaviour() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &data {
            all.record(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..37] {
            a.record(x);
        }
        for &x in &data[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn histogram_percentiles_are_ordered() {
        let mut h = Histogram::new();
        for us in 1..=1000u64 {
            h.record(SimDuration::from_micros(us));
        }
        let p10 = h.percentile(10.0).unwrap();
        let p50 = h.percentile(50.0).unwrap();
        let p99 = h.percentile(99.0).unwrap();
        assert!(p10 <= p50 && p50 <= p99);
        // p50 within bucket error of 500us.
        let p50us = p50.as_nanos() as f64 / 1e3;
        assert!((450.0..=560.0).contains(&p50us), "p50 = {p50us}us");
    }

    #[test]
    fn histogram_mean_exact() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_millis(1));
        h.record(SimDuration::from_millis(3));
        assert_eq!(h.mean(), Some(SimDuration::from_millis(2)));
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.mean(), None);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(SimDuration::from_micros(10));
        b.record(SimDuration::from_micros(20));
        a.merge(&b);
        assert_eq!(a.count(), 2);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn histogram_percentile_out_of_range_panics() {
        let h = Histogram::new();
        let _ = h.percentile(101.0);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn histogram_negative_percentile_panics() {
        let h = Histogram::new();
        let _ = h.percentile(-0.1);
    }

    #[test]
    fn histogram_single_sample_is_every_percentile() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_micros(250));
        let p0 = h.percentile(0.0).unwrap();
        let p50 = h.percentile(50.0).unwrap();
        let p100 = h.percentile(100.0).unwrap();
        assert_eq!(p0, p50);
        assert_eq!(p50, p100);
        // The answer is the sample's bucket upper bound: at or just
        // above the recorded value, within the <10% bucket error.
        let ns = p50.as_nanos() as f64;
        assert!((250_000.0..=250_000.0 * 1.1).contains(&ns), "p50 = {ns}ns");
    }

    #[test]
    fn histogram_p0_and_p100_bracket_the_data() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_micros(10));
        for _ in 0..10 {
            h.record(SimDuration::from_millis(1));
        }
        h.record(SimDuration::from_millis(10));
        // p0 resolves to the smallest observation's bucket, p100 to the
        // largest's, each within the <10% bucket error above the value.
        let p0 = h.percentile(0.0).unwrap().as_nanos() as f64;
        let p100 = h.percentile(100.0).unwrap().as_nanos() as f64;
        assert!((10_000.0..=11_000.0).contains(&p0), "p0 = {p0}ns");
        assert!((10e6..=11e6).contains(&p100), "p100 = {p100}ns");
    }

    #[test]
    fn histogram_zero_duration_lands_in_the_first_bucket() {
        let mut h = Histogram::new();
        h.record(SimDuration::ZERO);
        let p = h.percentile(0.0).unwrap();
        assert!(p.as_nanos() <= 2, "first-bucket upper bound, got {p:?}");
        assert_eq!(h.mean(), Some(SimDuration::ZERO));
    }

    #[test]
    fn histogram_percentile_error_is_bounded_by_bucket_width() {
        // A uniform 1..=10000us ramp: every queried percentile must land
        // within one log-bucket (~9.05% wide) of the exact order
        // statistic the rank formula selects.
        let mut h = Histogram::new();
        for us in 1..=10_000u64 {
            h.record(SimDuration::from_micros(us));
        }
        for p in [1.0f64, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9] {
            let exact_us = (p / 100.0 * 10_000.0).ceil().max(1.0);
            let got_us = h.percentile(p).unwrap().as_nanos() as f64 / 1e3;
            assert!(
                (exact_us * 0.9..=exact_us * 1.1).contains(&got_us),
                "p{p}: got {got_us}us, exact {exact_us}us"
            );
        }
    }

    #[test]
    fn rate_meter_resets() {
        let mut m = RateMeter::new(SimTime::ZERO);
        m.record(ByteSize::from_mib(10));
        let t1 = SimTime::from_nanos(500_000_000);
        assert!((m.mib_per_sec(t1) - 20.0).abs() < 1e-9);
        m.reset(t1);
        assert_eq!(m.bytes(), ByteSize::ZERO);
        assert_eq!(m.mib_per_sec(t1), 0.0);
    }

    #[test]
    fn windowed_series_lookup() {
        let mut s = WindowedSeries::new("1-parity");
        s.push(4.0, 10.0);
        s.push(8.0, 20.0);
        assert_eq!(s.y_at(8.0), Some(20.0));
        assert_eq!(s.y_at(6.0), None);
    }
}
