#![warn(missing_docs)]
//! Simulation substrate for the Reo object-based flash cache reproduction.
//!
//! The Reo paper (ICDCS'19) evaluates its prototype on a physical testbed:
//! a five-SSD flash array, a hard-drive backend, and a 10 GbE network. This
//! crate provides the *time base* that lets the rest of the workspace model
//! that hardware deterministically in user space:
//!
//! * [`SimTime`] / [`SimDuration`] — a nanosecond-resolution virtual clock.
//! * [`SimClock`] — a monotonically advancing clock shared by simulated
//!   devices.
//! * [`ServiceModel`] — per-device service-time model (fixed per-operation
//!   latency plus a bandwidth term), used by the SSD, HDD, and network
//!   models.
//! * [`ByteSize`] — a byte-count newtype with human-friendly constructors.
//! * Statistics: [`OnlineStats`], [`Histogram`], [`RateMeter`] and
//!   [`WindowedSeries`] for the measurements the paper reports (hit ratio,
//!   bandwidth, latency).
//! * [`rng`] — seed-deterministic random number helpers so that every
//!   experiment is exactly reproducible.
//! * [`TokenBucket`] — a deterministic byte-rate throttle over simulated
//!   time, used to cap background (rebuild) bandwidth.
//! * [`Tracer`] — the `reo-trace` span recorder: sim-clock-stamped,
//!   per-layer latency attribution with near-zero cost when disabled, plus
//!   per-request [`TraceTree`] exemplar capture.
//! * [`FlightRecorder`] — a black-box ring of structured control-plane
//!   events with deterministic [`Postmortem`] dumps.
//!
//! Nothing in this crate (or its dependents) reads the wall clock; simulated
//! time only moves when a model says it does.
//!
//! # Examples
//!
//! ```
//! use reo_sim::{ByteSize, ServiceModel, SimClock, SimDuration};
//!
//! // An SSD that costs 100us per operation and streams at 500 MB/s.
//! let ssd = ServiceModel::new(SimDuration::from_micros(100), 500 * 1024 * 1024);
//! let clock = SimClock::new();
//! let t = ssd.service_time(ByteSize::from_mib(1));
//! clock.advance(t);
//! assert!(clock.now().as_nanos() > 0);
//! ```

mod flight;
mod qos;
pub mod rng;
mod service;
mod size;
mod stats;
mod time;
mod trace;

pub use flight::{FlightEvent, FlightRecorder, Postmortem};
pub use qos::TokenBucket;
pub use service::ServiceModel;
pub use size::ByteSize;
pub use stats::{Histogram, OnlineStats, RateMeter, WindowedSeries};
pub use time::{SimClock, SimDuration, SimTime};
pub use trace::{
    Layer, LayerBreakdown, Span, TraceAnnotation, TraceBreakdown, TraceSpanNode, TraceTree, Tracer,
};
