//! Device service-time models.

use serde::{Deserialize, Serialize};

use crate::{ByteSize, SimDuration};

/// A two-parameter service-time model for a storage or network device.
///
/// The time to service one operation of `n` bytes is
///
/// ```text
/// service_time(n) = per_op_latency + n / bytes_per_sec
/// ```
///
/// This is the classic latency/bandwidth decomposition: the fixed term models
/// command setup, seek, or flash-channel access latency; the linear term
/// models media/link transfer. It is deliberately simple — every experiment
/// in the Reo paper compares *relative* behaviour across protection schemes
/// on identical hardware, so a calibrated affine model preserves every
/// reported shape.
///
/// # Examples
///
/// ```
/// use reo_sim::{ByteSize, ServiceModel, SimDuration};
///
/// let hdd = ServiceModel::new(SimDuration::from_millis(8), 120 * 1024 * 1024);
/// let t = hdd.service_time(ByteSize::from_mib(120));
/// // 8ms seek + 1s transfer
/// assert_eq!(t, SimDuration::from_millis(1008));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceModel {
    per_op_latency: SimDuration,
    bytes_per_sec: u64,
}

impl ServiceModel {
    /// Creates a service model with the given fixed per-operation latency
    /// and sustained bandwidth in bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is zero.
    pub fn new(per_op_latency: SimDuration, bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "bandwidth must be non-zero");
        ServiceModel {
            per_op_latency,
            bytes_per_sec,
        }
    }

    /// A model that costs nothing. Useful in unit tests of higher layers.
    pub fn instant() -> Self {
        ServiceModel {
            per_op_latency: SimDuration::ZERO,
            bytes_per_sec: u64::MAX,
        }
    }

    /// The fixed per-operation latency term.
    pub fn per_op_latency(&self) -> SimDuration {
        self.per_op_latency
    }

    /// The sustained-bandwidth term, in bytes per second.
    pub fn bytes_per_sec(&self) -> u64 {
        self.bytes_per_sec
    }

    /// Time to service a single operation transferring `bytes`.
    pub fn service_time(&self, bytes: ByteSize) -> SimDuration {
        self.per_op_latency + self.transfer_time(bytes)
    }

    /// Time for the transfer term alone (no per-operation latency).
    ///
    /// Used when several chunks stream in one sequential operation, so the
    /// fixed cost is paid once.
    pub fn transfer_time(&self, bytes: ByteSize) -> SimDuration {
        if self.bytes_per_sec == u64::MAX {
            return SimDuration::ZERO;
        }
        // nanos = bytes * 1e9 / bw, computed in u128 to avoid overflow for
        // large transfers.
        let nanos = (bytes.as_bytes() as u128 * 1_000_000_000u128) / self.bytes_per_sec as u128;
        SimDuration::from_nanos(nanos as u64)
    }

    /// Time to service `ops` operations of `bytes` each, paying the fixed
    /// cost once per operation.
    pub fn service_time_batch(&self, ops: u64, bytes: ByteSize) -> SimDuration {
        self.per_op_latency * ops + self.transfer_time(ByteSize::from_bytes(bytes.as_bytes() * ops))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_time_is_affine() {
        let m = ServiceModel::new(SimDuration::from_micros(100), 1_000_000_000);
        // 1e9 B/s => 1 byte per nanosecond.
        let t = m.service_time(ByteSize::from_bytes(500));
        assert_eq!(
            t,
            SimDuration::from_micros(100) + SimDuration::from_nanos(500)
        );
    }

    #[test]
    fn instant_model_is_free() {
        let m = ServiceModel::instant();
        assert_eq!(m.service_time(ByteSize::from_gib(100)), SimDuration::ZERO);
    }

    #[test]
    fn batch_pays_latency_per_op() {
        let m = ServiceModel::new(SimDuration::from_micros(10), 1_000_000_000);
        let t = m.service_time_batch(5, ByteSize::from_bytes(1000));
        assert_eq!(
            t,
            SimDuration::from_micros(50) + SimDuration::from_nanos(5000)
        );
    }

    #[test]
    fn large_transfers_do_not_overflow() {
        let m = ServiceModel::new(SimDuration::ZERO, 100 * 1024 * 1024);
        let t = m.service_time(ByteSize::from_gib(1024));
        assert!(t.as_secs_f64() > 10_000.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_bandwidth_panics() {
        let _ = ServiceModel::new(SimDuration::ZERO, 0);
    }
}
