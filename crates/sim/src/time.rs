//! Virtual time: instants, durations, and a shared monotonic clock.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// An instant on the simulated timeline, in nanoseconds since simulation
/// start.
///
/// `SimTime` is a monotonic virtual instant — it has no relationship to the
/// wall clock. Two `SimTime` values from the same simulation are directly
/// comparable; subtracting them yields a [`SimDuration`].
///
/// # Examples
///
/// ```
/// use reo_sim::{SimDuration, SimTime};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_millis(5);
/// assert_eq!(t1 - t0, SimDuration::from_millis(5));
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of the simulated timeline.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (lossy for display and
    /// rate computations).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration elapsed since `earlier`, saturating to zero if
    /// `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({})", format_nanos(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_nanos(self.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use reo_sim::SimDuration;
///
/// let d = SimDuration::from_micros(250) * 4;
/// assert_eq!(d, SimDuration::from_millis(1));
/// assert_eq!(d.as_secs_f64(), 0.001);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from a floating-point number of seconds, rounding
    /// to the nearest nanosecond and saturating at zero for negative input.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 || !secs.is_finite() {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e9).round() as u64)
    }

    /// The duration in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns `self - rhs`, or [`SimDuration::ZERO`] if `rhs > self`.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({})", format_nanos(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_nanos(self.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

fn format_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.3}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3}us", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

/// A shared, monotonically advancing virtual clock.
///
/// The clock is the single source of "now" for a simulation. Devices advance
/// it as they service requests; the experiment runner reads it to compute
/// bandwidth (bytes transferred per simulated second).
///
/// Cloning a `SimClock` yields a handle to the *same* underlying clock.
///
/// # Examples
///
/// ```
/// use reo_sim::{SimClock, SimDuration};
///
/// let clock = SimClock::new();
/// let handle = clock.clone();
/// clock.advance(SimDuration::from_millis(3));
/// assert_eq!(handle.now().as_nanos(), 3_000_000);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    now_nanos: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock positioned at [`SimTime::ZERO`].
    pub fn new() -> Self {
        SimClock::default()
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        SimTime(self.now_nanos.load(Ordering::Relaxed))
    }

    /// Moves the clock forward by `d` and returns the new instant.
    pub fn advance(&self, d: SimDuration) -> SimTime {
        let prev = self.now_nanos.fetch_add(d.0, Ordering::Relaxed);
        SimTime(prev + d.0)
    }

    /// Creates an *independent* clock positioned at this clock's current
    /// instant.
    ///
    /// Unlike [`Clone`] (which shares the underlying counter), a fork
    /// advances on its own — the pattern the sharded request engine uses
    /// for per-shard virtual clocks that drift during a batch and are
    /// merged back with [`SimClock::advance_to`] at request barriers.
    pub fn fork(&self) -> SimClock {
        SimClock {
            now_nanos: Arc::new(AtomicU64::new(self.now_nanos.load(Ordering::Relaxed))),
        }
    }

    /// Moves the clock forward to `t` if `t` is later than now; otherwise
    /// leaves the clock unchanged. Returns the (possibly unchanged) current
    /// instant.
    ///
    /// This is useful when several parallel device operations complete at
    /// different instants and the simulation should resume at the latest one.
    pub fn advance_to(&self, t: SimTime) -> SimTime {
        let mut cur = self.now_nanos.load(Ordering::Relaxed);
        while t.0 > cur {
            match self.now_nanos.compare_exchange_weak(
                cur,
                t.0,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return t,
                Err(actual) => cur = actual,
            }
        }
        SimTime(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(1_500);
        let d = SimDuration::from_nanos(500);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
    }

    #[test]
    fn duration_from_secs_f64_saturates() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d * 3, SimDuration::from_micros(30));
        assert_eq!(d / 2, SimDuration::from_micros(5));
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(30);
        assert_eq!(late.saturating_since(early), SimDuration::from_nanos(20));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn clock_advance_is_shared_between_clones() {
        let clock = SimClock::new();
        let other = clock.clone();
        clock.advance(SimDuration::from_nanos(7));
        other.advance(SimDuration::from_nanos(5));
        assert_eq!(clock.now(), SimTime::from_nanos(12));
    }

    #[test]
    fn clock_fork_is_independent() {
        let clock = SimClock::new();
        clock.advance(SimDuration::from_nanos(10));
        let forked = clock.fork();
        assert_eq!(forked.now(), clock.now());
        forked.advance(SimDuration::from_nanos(5));
        assert_eq!(clock.now(), SimTime::from_nanos(10));
        assert_eq!(forked.now(), SimTime::from_nanos(15));
        // Merging at a barrier: the fork only ever catches *up* to the
        // authoritative clock, never drags it forward.
        forked.advance_to(clock.now());
        assert_eq!(forked.now(), SimTime::from_nanos(15));
        clock.advance(SimDuration::from_nanos(20));
        forked.advance_to(clock.now());
        assert_eq!(forked.now(), SimTime::from_nanos(30));
    }

    #[test]
    fn clock_advance_to_never_rewinds() {
        let clock = SimClock::new();
        clock.advance(SimDuration::from_millis(10));
        let before = clock.now();
        clock.advance_to(SimTime::from_nanos(5));
        assert_eq!(clock.now(), before);
        let later = SimTime::ZERO + SimDuration::from_millis(20);
        assert_eq!(clock.advance_to(later), later);
        assert_eq!(clock.now(), later);
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(SimDuration::from_nanos(42).to_string(), "42ns");
        assert_eq!(SimDuration::from_micros(42).to_string(), "42.000us");
        assert_eq!(SimDuration::from_millis(42).to_string(), "42.000ms");
        assert_eq!(SimDuration::from_secs(42).to_string(), "42.000s");
    }
}
