//! `reo-trace`: a lightweight per-layer span recorder.
//!
//! The Reo paper explains every headline number — hit ratio, bandwidth,
//! latency, recovery time — by *where* time and bytes go. This module is
//! the measurement substrate for that attribution: every layer of the
//! stack (cache manager, OSD target, stripe manager, flash array,
//! backend) wraps its operations in [`Tracer`] spans stamped with the
//! simulated clock, and the tracer aggregates them into a per-layer
//! latency breakdown plus a bounded ring of recent spans for inspection.
//!
//! Design constraints:
//!
//! * **No external dependencies** — plain `std` synchronization, the
//!   same pattern as [`crate::SimClock`].
//! * **Near-zero cost when disabled** — every instrumentation point is a
//!   single relaxed atomic load behind [`Tracer::begin`], which returns
//!   `None` so the subsequent [`Tracer::record`] is a no-op.
//! * **Shared handle semantics** — cloning a `Tracer` yields a handle to
//!   the *same* recorder, so one tracer threads through every layer of a
//!   cache system and aggregates in one place.
//!
//! # Examples
//!
//! ```
//! use reo_sim::{Layer, SimClock, SimDuration, Tracer};
//!
//! let clock = SimClock::new();
//! let tracer = Tracer::new();
//! tracer.set_enabled(true);
//!
//! tracer.begin_request();
//! let t0 = tracer.begin(&clock);
//! clock.advance(SimDuration::from_micros(250));
//! tracer.record(reo_sim::Layer::Flash, "read", t0, clock.now());
//!
//! let breakdown = tracer.breakdown();
//! let flash = breakdown.layer(Layer::Flash).unwrap();
//! assert_eq!(flash.spans, 1);
//! assert_eq!(flash.total, SimDuration::from_micros(250));
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use crate::stats::Histogram;
use crate::time::{SimClock, SimDuration, SimTime};

/// The stack layer a span was recorded in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Layer {
    /// The cache-manager / request layer (whole-request spans).
    Cache,
    /// The object storage target (object index, classes, scrub, recovery).
    Target,
    /// The stripe manager (encode/decode, placement, retry).
    Stripe,
    /// The flash array (device service time).
    Flash,
    /// The backend store (HDD + network behind the cache).
    Backend,
}

impl Layer {
    /// All layers, outermost first — the nesting order of a request.
    pub const ALL: [Layer; 5] = [
        Layer::Cache,
        Layer::Target,
        Layer::Stripe,
        Layer::Flash,
        Layer::Backend,
    ];

    /// Stable lower-case name (exporter field value).
    pub fn as_str(self) -> &'static str {
        match self {
            Layer::Cache => "cache",
            Layer::Target => "target",
            Layer::Stripe => "stripe",
            Layer::Flash => "flash",
            Layer::Backend => "backend",
        }
    }

    fn index(self) -> usize {
        match self {
            Layer::Cache => 0,
            Layer::Target => 1,
            Layer::Stripe => 2,
            Layer::Flash => 3,
            Layer::Backend => 4,
        }
    }
}

impl std::fmt::Display for Layer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One recorded span: an operation in one layer over a simulated
/// interval, tagged with the request it served.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct Span {
    /// The request ordinal ([`Tracer::begin_request`] count) this span
    /// belongs to; 0 for spans outside any request (background work).
    pub request: u64,
    /// The layer that recorded the span.
    pub layer: Layer,
    /// A static operation label, e.g. `"read"`, `"store"`, `"scrub"`.
    pub op: &'static str,
    /// Span start (simulated).
    pub start: SimTime,
    /// Span end (simulated).
    pub end: SimTime,
}

impl Span {
    /// The span's simulated duration.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// Aggregated statistics for one layer.
#[derive(Clone, Debug, Default)]
struct LayerAgg {
    spans: u64,
    total: SimDuration,
    latency: Option<Box<Histogram>>,
}

impl LayerAgg {
    fn record(&mut self, d: SimDuration) {
        self.spans += 1;
        self.total += d;
        self.latency
            .get_or_insert_with(|| Box::new(Histogram::new()))
            .record(d);
    }
}

/// The per-layer breakdown of one layer, as reported by
/// [`Tracer::breakdown`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LayerBreakdown {
    /// The layer.
    pub layer: Layer,
    /// Spans recorded.
    pub spans: u64,
    /// Summed (inclusive) simulated time across spans. Inner layers nest
    /// inside outer ones, so sums are inclusive: subtract the next layer
    /// in [`Layer::ALL`] order for exclusive time.
    pub total: SimDuration,
    /// Mean span duration.
    pub mean: SimDuration,
    /// 99th-percentile span duration.
    pub p99: SimDuration,
}

/// A snapshot of everything the tracer aggregated.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceBreakdown {
    /// Requests delimited with [`Tracer::begin_request`].
    pub requests: u64,
    /// Per-layer rows, in [`Layer::ALL`] order; layers with no spans are
    /// omitted.
    pub layers: Vec<LayerBreakdown>,
}

impl TraceBreakdown {
    /// The row for `layer`, if it recorded any spans.
    pub fn layer(&self, layer: Layer) -> Option<&LayerBreakdown> {
        self.layers.iter().find(|l| l.layer == layer)
    }

    /// Exclusive time of `layer`: its inclusive total minus the inclusive
    /// total of the next-inner layer (per [`Layer::ALL`] nesting). The
    /// backend is not nested under flash, so its exclusive time equals
    /// its inclusive time; cache excludes target, target excludes
    /// stripe, stripe excludes flash.
    pub fn exclusive(&self, layer: Layer) -> SimDuration {
        let own = self.layer(layer).map(|l| l.total).unwrap_or_default();
        let inner = match layer {
            Layer::Cache => {
                // Cache contains both the target path and the backend path.
                self.layer(Layer::Target)
                    .map(|l| l.total)
                    .unwrap_or_default()
                    + self
                        .layer(Layer::Backend)
                        .map(|l| l.total)
                        .unwrap_or_default()
            }
            Layer::Target => self
                .layer(Layer::Stripe)
                .map(|l| l.total)
                .unwrap_or_default(),
            Layer::Stripe => self
                .layer(Layer::Flash)
                .map(|l| l.total)
                .unwrap_or_default(),
            Layer::Flash | Layer::Backend => SimDuration::ZERO,
        };
        own.saturating_sub(inner)
    }
}

#[derive(Debug, Default)]
struct TraceAgg {
    layers: [LayerAgg; 5],
    recent: Vec<Span>,
    recent_cap: usize,
    recent_next: usize,
    requests: u64,
}

#[derive(Debug)]
struct TracerShared {
    enabled: AtomicBool,
    agg: Mutex<TraceAgg>,
}

/// How many recent spans the tracer retains for inspection.
const DEFAULT_RECENT_SPANS: usize = 512;

/// A cloneable handle to a shared span recorder (see the module docs).
#[derive(Clone, Debug)]
pub struct Tracer {
    shared: Arc<TracerShared>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// Creates a disabled tracer. Instrumentation points cost one atomic
    /// load until [`Tracer::set_enabled`] turns recording on.
    pub fn new() -> Self {
        Tracer {
            shared: Arc::new(TracerShared {
                enabled: AtomicBool::new(false),
                agg: Mutex::new(TraceAgg {
                    recent_cap: DEFAULT_RECENT_SPANS,
                    ..TraceAgg::default()
                }),
            }),
        }
    }

    /// `true` when spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.shared.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off. All clones of this handle see the
    /// change immediately.
    pub fn set_enabled(&self, enabled: bool) {
        self.shared.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Starts a span: reads the clock if recording is on. The returned
    /// token is `None` when disabled, making the matching
    /// [`Tracer::record`] free.
    #[inline]
    pub fn begin(&self, clock: &SimClock) -> Option<SimTime> {
        if self.is_enabled() {
            Some(clock.now())
        } else {
            None
        }
    }

    /// Finishes a span started with [`Tracer::begin`]. No-op when
    /// `started` is `None`.
    #[inline]
    pub fn record(&self, layer: Layer, op: &'static str, started: Option<SimTime>, end: SimTime) {
        let Some(start) = started else { return };
        self.push(layer, op, start, end);
    }

    /// Records a span with explicit bounds, bypassing the begin/record
    /// pairing (used when the start instant is known for other reasons,
    /// e.g. batched device completions). No-op when disabled.
    #[inline]
    pub fn record_span(&self, layer: Layer, op: &'static str, start: SimTime, end: SimTime) {
        if !self.is_enabled() {
            return;
        }
        self.push(layer, op, start, end);
    }

    fn push(&self, layer: Layer, op: &'static str, start: SimTime, end: SimTime) {
        let mut agg = self.shared.agg.lock().expect("tracer lock");
        let request = agg.requests;
        agg.layers[layer.index()].record(end.saturating_since(start));
        let cap = agg.recent_cap;
        if cap == 0 {
            return;
        }
        let span = Span {
            request,
            layer,
            op,
            start,
            end,
        };
        if agg.recent.len() < cap {
            agg.recent.push(span);
        } else {
            let at = agg.recent_next;
            agg.recent[at] = span;
        }
        agg.recent_next = (agg.recent_next + 1) % cap;
    }

    /// Delimits a new request: spans recorded until the next call carry
    /// this request's ordinal. Returns the ordinal (1-based), or 0 when
    /// recording is off.
    pub fn begin_request(&self) -> u64 {
        if !self.is_enabled() {
            return 0;
        }
        let mut agg = self.shared.agg.lock().expect("tracer lock");
        agg.requests += 1;
        agg.requests
    }

    /// Snapshot of the aggregated per-layer breakdown.
    pub fn breakdown(&self) -> TraceBreakdown {
        let agg = self.shared.agg.lock().expect("tracer lock");
        TraceBreakdown {
            requests: agg.requests,
            layers: Layer::ALL
                .iter()
                .filter_map(|&layer| {
                    let a = &agg.layers[layer.index()];
                    if a.spans == 0 {
                        return None;
                    }
                    let latency = a.latency.as_deref();
                    Some(LayerBreakdown {
                        layer,
                        spans: a.spans,
                        total: a.total,
                        mean: latency
                            .and_then(Histogram::mean)
                            .unwrap_or(SimDuration::ZERO),
                        p99: latency
                            .and_then(|h| h.percentile(99.0))
                            .unwrap_or(SimDuration::ZERO),
                    })
                })
                .collect(),
        }
    }

    /// The most recent spans (up to an internal cap), oldest first.
    pub fn recent_spans(&self) -> Vec<Span> {
        let agg = self.shared.agg.lock().expect("tracer lock");
        if agg.recent.len() < agg.recent_cap {
            agg.recent.clone()
        } else {
            let mut out = Vec::with_capacity(agg.recent.len());
            out.extend_from_slice(&agg.recent[agg.recent_next..]);
            out.extend_from_slice(&agg.recent[..agg.recent_next]);
            out
        }
    }

    /// Clears all aggregates and spans (e.g. at the end of warm-up), and
    /// keeps the enabled flag unchanged.
    pub fn reset(&self) {
        let mut agg = self.shared.agg.lock().expect("tracer lock");
        let cap = agg.recent_cap;
        *agg = TraceAgg {
            recent_cap: cap,
            ..TraceAgg::default()
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1_000)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let clock = SimClock::new();
        let tracer = Tracer::new();
        assert!(!tracer.is_enabled());
        let token = tracer.begin(&clock);
        assert!(token.is_none());
        tracer.record(Layer::Flash, "read", token, clock.now());
        tracer.record_span(Layer::Stripe, "read", t(0), t(10));
        assert_eq!(tracer.begin_request(), 0);
        let b = tracer.breakdown();
        assert_eq!(b.requests, 0);
        assert!(b.layers.is_empty());
        assert!(tracer.recent_spans().is_empty());
    }

    #[test]
    fn clones_share_the_recorder() {
        let tracer = Tracer::new();
        let other = tracer.clone();
        tracer.set_enabled(true);
        assert!(other.is_enabled());
        other.record_span(Layer::Backend, "read", t(0), t(100));
        let b = tracer.breakdown();
        assert_eq!(b.layer(Layer::Backend).unwrap().spans, 1);
    }

    #[test]
    fn breakdown_aggregates_per_layer() {
        let tracer = Tracer::new();
        tracer.set_enabled(true);
        tracer.begin_request();
        tracer.record_span(Layer::Stripe, "read", t(0), t(40));
        tracer.record_span(Layer::Flash, "read", t(0), t(30));
        tracer.begin_request();
        tracer.record_span(Layer::Stripe, "read", t(40), t(100));
        let b = tracer.breakdown();
        assert_eq!(b.requests, 2);
        let stripe = b.layer(Layer::Stripe).unwrap();
        assert_eq!(stripe.spans, 2);
        assert_eq!(stripe.total, SimDuration::from_micros(100));
        let flash = b.layer(Layer::Flash).unwrap();
        assert_eq!(flash.total, SimDuration::from_micros(30));
        // Exclusive stripe time subtracts nested flash time.
        assert_eq!(b.exclusive(Layer::Stripe), SimDuration::from_micros(70));
        assert_eq!(b.exclusive(Layer::Flash), SimDuration::from_micros(30));
    }

    #[test]
    fn exclusive_cache_subtracts_target_and_backend() {
        let tracer = Tracer::new();
        tracer.set_enabled(true);
        tracer.record_span(Layer::Cache, "request", t(0), t(100));
        tracer.record_span(Layer::Target, "read", t(0), t(30));
        tracer.record_span(Layer::Backend, "read", t(30), t(90));
        let b = tracer.breakdown();
        assert_eq!(b.exclusive(Layer::Cache), SimDuration::from_micros(10));
    }

    #[test]
    fn recent_spans_are_bounded_and_ordered() {
        let tracer = Tracer::new();
        tracer.set_enabled(true);
        for i in 0..(DEFAULT_RECENT_SPANS as u64 + 10) {
            tracer.record_span(Layer::Flash, "read", t(i), t(i + 1));
        }
        let spans = tracer.recent_spans();
        assert_eq!(spans.len(), DEFAULT_RECENT_SPANS);
        // Oldest retained span is number 10; order is oldest → newest.
        assert_eq!(spans[0].start, t(10));
        assert_eq!(
            spans.last().unwrap().start,
            t(DEFAULT_RECENT_SPANS as u64 + 9)
        );
        for w in spans.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
    }

    #[test]
    fn reset_clears_but_keeps_enabled() {
        let tracer = Tracer::new();
        tracer.set_enabled(true);
        tracer.begin_request();
        tracer.record_span(Layer::Flash, "read", t(0), t(5));
        tracer.reset();
        assert!(tracer.is_enabled());
        let b = tracer.breakdown();
        assert_eq!(b.requests, 0);
        assert!(b.layers.is_empty());
        assert!(tracer.recent_spans().is_empty());
    }

    #[test]
    fn layer_names_are_stable() {
        let names: Vec<&str> = Layer::ALL.iter().map(|l| l.as_str()).collect();
        assert_eq!(names, ["cache", "target", "stripe", "flash", "backend"]);
    }
}
