//! `reo-trace`: a lightweight per-layer span recorder with causal
//! per-request trace trees.
//!
//! The Reo paper explains every headline number — hit ratio, bandwidth,
//! latency, recovery time — by *where* time and bytes go. This module is
//! the measurement substrate for that attribution: every layer of the
//! stack (cache manager, OSD target, stripe manager, flash array,
//! backend, journal, placement) wraps its operations in [`Tracer`] spans
//! stamped with the simulated clock, and the tracer aggregates them into
//! a per-layer latency breakdown plus a bounded ring of recent spans for
//! inspection.
//!
//! On top of the aggregates the tracer keeps **per-request trace trees**:
//! [`Tracer::begin_request`] mints a trace id at the outermost entry
//! point, every span recorded until the matching [`Tracer::end_request`]
//! is buffered, and on completion the buffer is either discarded (the
//! common case) or resolved into a parent/child [`TraceTree`] and
//! retained as an **exemplar** — every request that ends with a sense
//! code keeps its full tree, as do the slowest requests seen so far.
//! Event annotations ([`Tracer::annotate`]) such as `retry`,
//! `read-repair`, `degraded-path` and `qos-stall` ride along inside the
//! tree.
//!
//! Design constraints:
//!
//! * **No external dependencies** — plain `std` synchronization, the
//!   same pattern as [`crate::SimClock`].
//! * **Near-zero cost when disabled** — every instrumentation point is a
//!   single relaxed atomic load behind [`Tracer::begin`], which returns
//!   `None` so the subsequent [`Tracer::record`] is a no-op.
//! * **Shared handle semantics** — cloning a `Tracer` yields a handle to
//!   the *same* recorder, so one tracer threads through every layer of a
//!   cache system (or a whole cluster) and aggregates in one place.
//! * **Determinism** — retention decisions and parent resolution depend
//!   only on simulated time and arrival order, so identical seeds yield
//!   byte-identical exemplar sets.
//!
//! # Examples
//!
//! ```
//! use reo_sim::{Layer, SimClock, SimDuration, Tracer};
//!
//! let clock = SimClock::new();
//! let tracer = Tracer::new();
//! tracer.set_enabled(true);
//!
//! tracer.begin_request();
//! let t0 = tracer.begin(&clock);
//! clock.advance(SimDuration::from_micros(250));
//! tracer.record(reo_sim::Layer::Flash, "read", t0, clock.now());
//! tracer.end_request(SimDuration::from_micros(250), None);
//!
//! let breakdown = tracer.breakdown();
//! let flash = breakdown.layer(Layer::Flash).unwrap();
//! assert_eq!(flash.spans, 1);
//! assert_eq!(flash.total, SimDuration::from_micros(250));
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use crate::stats::Histogram;
use crate::time::{SimClock, SimDuration, SimTime};

/// The stack layer a span was recorded in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Layer {
    /// The cache-manager / request layer (whole-request spans).
    Cache,
    /// The object storage target (object index, classes, scrub, recovery).
    Target,
    /// The stripe manager (encode/decode, placement, retry).
    Stripe,
    /// The flash array (device service time).
    Flash,
    /// The backend store (HDD + network behind the cache).
    Backend,
    /// The metadata journal (append/flush/checkpoint/replay).
    Journal,
    /// The cluster placement layer (routing, whole-cluster-request spans).
    Placement,
}

impl Layer {
    /// All layers. The first five are in request-nesting order, outermost
    /// first; `Journal` and `Placement` are appended at the end so that
    /// exporter row order for the original layers stays stable across
    /// schema versions.
    pub const ALL: [Layer; 7] = [
        Layer::Cache,
        Layer::Target,
        Layer::Stripe,
        Layer::Flash,
        Layer::Backend,
        Layer::Journal,
        Layer::Placement,
    ];

    /// Stable lower-case name (exporter field value).
    pub fn as_str(self) -> &'static str {
        match self {
            Layer::Cache => "cache",
            Layer::Target => "target",
            Layer::Stripe => "stripe",
            Layer::Flash => "flash",
            Layer::Backend => "backend",
            Layer::Journal => "journal",
            Layer::Placement => "placement",
        }
    }

    fn index(self) -> usize {
        match self {
            Layer::Cache => 0,
            Layer::Target => 1,
            Layer::Stripe => 2,
            Layer::Flash => 3,
            Layer::Backend => 4,
            Layer::Journal => 5,
            Layer::Placement => 6,
        }
    }

    /// Causal nesting depth used to resolve parent/child structure in a
    /// [`TraceTree`]: a span's parent must sit at a strictly smaller
    /// depth and contain it in time. Placement (cluster entry) is the
    /// outermost; flash devices are the innermost.
    fn tree_depth(self) -> u32 {
        match self {
            Layer::Placement => 0,
            Layer::Cache => 1,
            Layer::Target | Layer::Backend => 2,
            Layer::Stripe | Layer::Journal => 3,
            Layer::Flash => 4,
        }
    }
}

impl std::fmt::Display for Layer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One recorded span: an operation in one layer over a simulated
/// interval, tagged with the request it served.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct Span {
    /// The request ordinal ([`Tracer::begin_request`] count) this span
    /// belongs to; 0 for spans outside any request (background work).
    pub request: u64,
    /// The layer that recorded the span.
    pub layer: Layer,
    /// A static operation label, e.g. `"read"`, `"store"`, `"scrub"`.
    pub op: &'static str,
    /// Span start (simulated).
    pub start: SimTime,
    /// Span end (simulated).
    pub end: SimTime,
}

impl Span {
    /// The span's simulated duration.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// A timestamped event annotation attached to a request's trace tree
/// (e.g. `retry`, `read-repair`, `degraded-path`, `qos-stall`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceAnnotation {
    /// When the event fired (simulated).
    pub at: SimTime,
    /// A static event label.
    pub label: &'static str,
}

/// One span in a retained [`TraceTree`], with its parent resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceSpanNode {
    /// 1-based span id within the tree (buffer arrival order).
    pub id: u32,
    /// Parent span id; 0 marks a root.
    pub parent: u32,
    /// The layer that recorded the span.
    pub layer: Layer,
    /// The operation label.
    pub op: &'static str,
    /// Span start (simulated).
    pub start: SimTime,
    /// Span end (simulated).
    pub end: SimTime,
}

impl TraceSpanNode {
    /// The node's simulated duration.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// A fully retained per-request trace: every span the request touched,
/// parent/child structure resolved, plus its event annotations.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceTree {
    /// The trace id ([`Tracer::begin_request`] ordinal).
    pub trace_id: u64,
    /// Why the tree was retained: `"sense"` (the request returned a
    /// sense code) or `"slow"` (slowest-percentile capture).
    pub reason: &'static str,
    /// The sense label the request completed with, when `reason` is
    /// `"sense"`.
    pub sense: Option<&'static str>,
    /// End-to-end request latency as reported by the caller.
    pub latency: SimDuration,
    /// Spans in arrival order with parents resolved.
    pub spans: Vec<TraceSpanNode>,
    /// Event annotations in arrival order.
    pub annotations: Vec<TraceAnnotation>,
    /// Spans dropped because the per-request buffer overflowed.
    pub truncated_spans: u64,
}

/// Aggregated statistics for one layer.
#[derive(Clone, Debug, Default)]
struct LayerAgg {
    spans: u64,
    total: SimDuration,
    latency: Option<Box<Histogram>>,
}

impl LayerAgg {
    fn record(&mut self, d: SimDuration) {
        self.spans += 1;
        self.total += d;
        self.latency
            .get_or_insert_with(|| Box::new(Histogram::new()))
            .record(d);
    }
}

/// The per-layer breakdown of one layer, as reported by
/// [`Tracer::breakdown`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LayerBreakdown {
    /// The layer.
    pub layer: Layer,
    /// Spans recorded.
    pub spans: u64,
    /// Summed (inclusive) simulated time across spans. Inner layers nest
    /// inside outer ones, so sums are inclusive: subtract the nested
    /// layers (see [`TraceBreakdown::exclusive`]) for exclusive time.
    pub total: SimDuration,
    /// Mean span duration.
    pub mean: SimDuration,
    /// 99th-percentile span duration.
    pub p99: SimDuration,
}

/// A snapshot of everything the tracer aggregated.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceBreakdown {
    /// Requests delimited with [`Tracer::begin_request`].
    pub requests: u64,
    /// Per-layer rows, in [`Layer::ALL`] order; layers with no spans are
    /// omitted.
    pub layers: Vec<LayerBreakdown>,
}

impl TraceBreakdown {
    /// The row for `layer`, if it recorded any spans.
    pub fn layer(&self, layer: Layer) -> Option<&LayerBreakdown> {
        self.layers.iter().find(|l| l.layer == layer)
    }

    /// Exclusive time of `layer`: its inclusive total minus the inclusive
    /// totals of the layers nested directly inside it. Placement (cluster
    /// entry) contains cache; cache contains the target path and the
    /// backend path; target contains stripe and journal; stripe contains
    /// flash. Flash, backend and journal are leaves.
    pub fn exclusive(&self, layer: Layer) -> SimDuration {
        let total_of = |layer: Layer| self.layer(layer).map(|l| l.total).unwrap_or_default();
        let own = total_of(layer);
        let inner = match layer {
            Layer::Placement => total_of(Layer::Cache),
            Layer::Cache => {
                // Cache contains both the target path and the backend path.
                total_of(Layer::Target) + total_of(Layer::Backend)
            }
            Layer::Target => total_of(Layer::Stripe) + total_of(Layer::Journal),
            Layer::Stripe => total_of(Layer::Flash),
            Layer::Flash | Layer::Backend | Layer::Journal => SimDuration::ZERO,
        };
        own.saturating_sub(inner)
    }
}

#[derive(Debug, Default)]
struct TraceAgg {
    layers: [LayerAgg; 7],
    recent: Vec<Span>,
    recent_cap: usize,
    recent_next: usize,
    requests: u64,
    /// Request scope nesting depth: `begin_request` at depth 0 mints a
    /// new trace id; nested calls (a cluster wrapping a node's own
    /// `handle`) only bump the depth so inner scopes are no-ops.
    depth: u32,
    current: Vec<Span>,
    current_truncated: u64,
    current_annotations: Vec<TraceAnnotation>,
    annotation_totals: BTreeMap<&'static str, u64>,
    sense_exemplars: Vec<PendingTree>,
    sense_dropped: u64,
    slow_exemplars: Vec<PendingTree>,
}

/// A retained request's raw buffers. Tree assembly is O(spans²), so it
/// is deferred to [`Tracer::exemplars`] — the request hot path only
/// moves the buffers here (top-K replacement included), keeping the
/// enabled tracer's per-request cost flat.
#[derive(Debug)]
struct PendingTree {
    trace_id: u64,
    reason: &'static str,
    sense: Option<&'static str>,
    latency: SimDuration,
    spans: Vec<Span>,
    annotations: Vec<TraceAnnotation>,
    truncated_spans: u64,
}

impl PendingTree {
    fn build(&self) -> TraceTree {
        build_tree(
            self.trace_id,
            self.reason,
            self.sense,
            self.latency,
            &self.spans,
            self.annotations.clone(),
            self.truncated_spans,
        )
    }
}

#[derive(Debug)]
struct TracerShared {
    enabled: AtomicBool,
    agg: Mutex<TraceAgg>,
}

/// How many recent spans the tracer retains for inspection.
const DEFAULT_RECENT_SPANS: usize = 512;

/// Span cap per in-flight request tree; overflow increments
/// [`TraceTree::truncated_spans`] instead of growing without bound.
const MAX_TREE_SPANS: usize = 256;

/// Annotation cap per in-flight request tree.
const MAX_TREE_ANNOTATIONS: usize = 64;

/// How many sense-coded request trees are retained (first come).
const SENSE_EXEMPLARS_CAP: usize = 24;

/// How many slowest-request trees are retained (top-K by latency).
const SLOW_EXEMPLARS_CAP: usize = 8;

/// A cloneable handle to a shared span recorder (see the module docs).
#[derive(Clone, Debug)]
pub struct Tracer {
    shared: Arc<TracerShared>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// Creates a disabled tracer. Instrumentation points cost one atomic
    /// load until [`Tracer::set_enabled`] turns recording on.
    pub fn new() -> Self {
        Tracer {
            shared: Arc::new(TracerShared {
                enabled: AtomicBool::new(false),
                agg: Mutex::new(TraceAgg {
                    recent_cap: DEFAULT_RECENT_SPANS,
                    ..TraceAgg::default()
                }),
            }),
        }
    }

    /// `true` when spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.shared.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off. All clones of this handle see the
    /// change immediately.
    pub fn set_enabled(&self, enabled: bool) {
        self.shared.enabled.store(enabled, Ordering::Relaxed);
    }

    /// `true` when both tracers are handles to the same recorder.
    pub fn same_recorder(&self, other: &Tracer) -> bool {
        Arc::ptr_eq(&self.shared, &other.shared)
    }

    /// Starts a span: reads the clock if recording is on. The returned
    /// token is `None` when disabled, making the matching
    /// [`Tracer::record`] free.
    #[inline]
    pub fn begin(&self, clock: &SimClock) -> Option<SimTime> {
        if self.is_enabled() {
            Some(clock.now())
        } else {
            None
        }
    }

    /// Finishes a span started with [`Tracer::begin`]. No-op when
    /// `started` is `None`.
    #[inline]
    pub fn record(&self, layer: Layer, op: &'static str, started: Option<SimTime>, end: SimTime) {
        let Some(start) = started else { return };
        self.push(layer, op, start, end);
    }

    /// Records a span with explicit bounds, bypassing the begin/record
    /// pairing (used when the start instant is known for other reasons,
    /// e.g. batched device completions). No-op when disabled.
    #[inline]
    pub fn record_span(&self, layer: Layer, op: &'static str, start: SimTime, end: SimTime) {
        if !self.is_enabled() {
            return;
        }
        self.push(layer, op, start, end);
    }

    /// Records a request-enclosing span: like [`Tracer::record`], but the
    /// end is extended to cover every span already buffered for the
    /// in-flight request. Background completions (e.g. an async
    /// write-back) finish at a *future* simulated instant beyond the
    /// caller's clock; extending the enclosing span keeps the tree
    /// builder's containment rule rooting them under this span. No-op
    /// when `started` is `None`.
    pub fn record_enclosing(
        &self,
        layer: Layer,
        op: &'static str,
        started: Option<SimTime>,
        end: SimTime,
    ) {
        let Some(start) = started else { return };
        let covered = {
            let agg = self.shared.agg.lock().expect("tracer lock");
            agg.current.iter().map(|s| s.end).fold(end, SimTime::max)
        };
        self.push(layer, op, start, covered);
    }

    fn push(&self, layer: Layer, op: &'static str, start: SimTime, end: SimTime) {
        let mut agg = self.shared.agg.lock().expect("tracer lock");
        let request = agg.requests;
        agg.layers[layer.index()].record(end.saturating_since(start));
        let span = Span {
            request,
            layer,
            op,
            start,
            end,
        };
        if agg.depth > 0 {
            if agg.current.len() < MAX_TREE_SPANS {
                agg.current.push(span);
            } else {
                agg.current_truncated += 1;
            }
        }
        let cap = agg.recent_cap;
        if cap == 0 {
            return;
        }
        if agg.recent.len() < cap {
            agg.recent.push(span);
        } else {
            let at = agg.recent_next;
            agg.recent[at] = span;
        }
        agg.recent_next = (agg.recent_next + 1) % cap;
    }

    /// Enters a request scope. At the outermost level this mints a new
    /// trace id (spans recorded until the matching
    /// [`Tracer::end_request`] carry it and are buffered for exemplar
    /// capture); nested calls — a cluster wrapping a node's own request
    /// path — are no-ops that return the in-flight id. Returns the
    /// 1-based trace id, or 0 when recording is off.
    pub fn begin_request(&self) -> u64 {
        if !self.is_enabled() {
            return 0;
        }
        let mut agg = self.shared.agg.lock().expect("tracer lock");
        agg.depth += 1;
        if agg.depth == 1 {
            agg.requests += 1;
            agg.current.clear();
            agg.current_truncated = 0;
            agg.current_annotations.clear();
        }
        agg.requests
    }

    /// Leaves a request scope opened with [`Tracer::begin_request`]. The
    /// outermost call finalizes the buffered spans: sense-coded requests
    /// (`sense` is `Some`) always retain their full [`TraceTree`]
    /// (bounded first-come), otherwise the tree is kept only while it
    /// ranks among the slowest requests seen. No-op when disabled or
    /// when nested.
    pub fn end_request(&self, latency: SimDuration, sense: Option<&'static str>) {
        if !self.is_enabled() {
            return;
        }
        let mut agg = self.shared.agg.lock().expect("tracer lock");
        if agg.depth == 0 {
            return;
        }
        agg.depth -= 1;
        if agg.depth > 0 {
            return;
        }
        let spans = std::mem::take(&mut agg.current);
        let annotations = std::mem::take(&mut agg.current_annotations);
        let truncated = std::mem::take(&mut agg.current_truncated);
        if spans.is_empty() && annotations.is_empty() {
            return;
        }
        let trace_id = agg.requests;
        let pending = |reason, sense| PendingTree {
            trace_id,
            reason,
            sense,
            latency,
            spans,
            annotations,
            truncated_spans: truncated,
        };
        if let Some(label) = sense {
            if agg.sense_exemplars.len() >= SENSE_EXEMPLARS_CAP {
                agg.sense_dropped += 1;
                return;
            }
            agg.sense_exemplars.push(pending("sense", Some(label)));
        } else if agg.slow_exemplars.len() < SLOW_EXEMPLARS_CAP {
            agg.slow_exemplars.push(pending("slow", None));
        } else {
            // Deterministic top-K: replace the (first) minimum only on a
            // strictly slower request, so ties keep the earlier trace.
            let min_at = agg
                .slow_exemplars
                .iter()
                .enumerate()
                .min_by_key(|(_, t)| t.latency)
                .map(|(i, _)| i)
                .expect("non-empty slow exemplars");
            if latency > agg.slow_exemplars[min_at].latency {
                agg.slow_exemplars[min_at] = pending("slow", None);
            }
        }
    }

    /// Attaches a timestamped event annotation (e.g. `"retry"`,
    /// `"degraded-path"`) to the in-flight request tree and counts it in
    /// the per-label totals. No-op when disabled.
    pub fn annotate(&self, label: &'static str, at: SimTime) {
        if !self.is_enabled() {
            return;
        }
        let mut agg = self.shared.agg.lock().expect("tracer lock");
        *agg.annotation_totals.entry(label).or_insert(0) += 1;
        if agg.depth > 0 && agg.current_annotations.len() < MAX_TREE_ANNOTATIONS {
            agg.current_annotations.push(TraceAnnotation { at, label });
        }
    }

    /// Per-label annotation totals since the last reset, sorted by label.
    pub fn annotation_counts(&self) -> Vec<(&'static str, u64)> {
        let agg = self.shared.agg.lock().expect("tracer lock");
        agg.annotation_totals
            .iter()
            .map(|(&label, &count)| (label, count))
            .collect()
    }

    /// The retained exemplar trees (sense-coded and slowest requests),
    /// sorted by trace id. Trees are assembled here, at snapshot time —
    /// the request path only buffers raw spans.
    pub fn exemplars(&self) -> Vec<TraceTree> {
        let agg = self.shared.agg.lock().expect("tracer lock");
        let mut out: Vec<TraceTree> = agg
            .sense_exemplars
            .iter()
            .chain(agg.slow_exemplars.iter())
            .map(PendingTree::build)
            .collect();
        out.sort_by_key(|t| t.trace_id);
        out
    }

    /// Sense-coded trees that were dropped because the exemplar store
    /// was full.
    pub fn exemplars_dropped(&self) -> u64 {
        self.shared.agg.lock().expect("tracer lock").sense_dropped
    }

    /// Snapshot of the aggregated per-layer breakdown.
    pub fn breakdown(&self) -> TraceBreakdown {
        let agg = self.shared.agg.lock().expect("tracer lock");
        TraceBreakdown {
            requests: agg.requests,
            layers: Layer::ALL
                .iter()
                .filter_map(|&layer| {
                    let a = &agg.layers[layer.index()];
                    if a.spans == 0 {
                        return None;
                    }
                    let latency = a.latency.as_deref();
                    Some(LayerBreakdown {
                        layer,
                        spans: a.spans,
                        total: a.total,
                        mean: latency
                            .and_then(Histogram::mean)
                            .unwrap_or(SimDuration::ZERO),
                        p99: latency
                            .and_then(|h| h.percentile(99.0))
                            .unwrap_or(SimDuration::ZERO),
                    })
                })
                .collect(),
        }
    }

    /// The most recent spans (up to an internal cap), oldest first.
    pub fn recent_spans(&self) -> Vec<Span> {
        let agg = self.shared.agg.lock().expect("tracer lock");
        if agg.recent.len() < agg.recent_cap {
            agg.recent.clone()
        } else {
            let mut out = Vec::with_capacity(agg.recent.len());
            out.extend_from_slice(&agg.recent[agg.recent_next..]);
            out.extend_from_slice(&agg.recent[..agg.recent_next]);
            out
        }
    }

    /// Clears all aggregates, spans, annotations and exemplars (e.g. at
    /// the end of warm-up), and keeps the enabled flag unchanged.
    pub fn reset(&self) {
        let mut agg = self.shared.agg.lock().expect("tracer lock");
        let cap = agg.recent_cap;
        *agg = TraceAgg {
            recent_cap: cap,
            ..TraceAgg::default()
        };
    }
}

/// Resolves parent/child structure over a request's buffered spans. A
/// span's parent is the span that (a) sits at a strictly smaller
/// [`Layer::tree_depth`], (b) contains it in simulated time, and (c) is
/// the closest such container — maximum depth, then latest start, then
/// highest id. Spans with no container are roots (`parent == 0`). The
/// rule is a pure function of the buffer, so identical runs resolve
/// identical trees.
fn build_tree(
    trace_id: u64,
    reason: &'static str,
    sense: Option<&'static str>,
    latency: SimDuration,
    spans: &[Span],
    annotations: Vec<TraceAnnotation>,
    truncated_spans: u64,
) -> TraceTree {
    let mut nodes: Vec<TraceSpanNode> = spans
        .iter()
        .enumerate()
        .map(|(i, s)| TraceSpanNode {
            id: (i + 1) as u32,
            parent: 0,
            layer: s.layer,
            op: s.op,
            start: s.start,
            end: s.end,
        })
        .collect();
    for i in 0..nodes.len() {
        let depth = nodes[i].layer.tree_depth();
        let (start, end) = (nodes[i].start, nodes[i].end);
        let mut best: Option<(u32, SimTime, u32)> = None;
        for candidate in &nodes {
            let cd = candidate.layer.tree_depth();
            if cd >= depth || candidate.start > start || candidate.end < end {
                continue;
            }
            let key = (cd, candidate.start, candidate.id);
            if best.is_none_or(|b| key > b) {
                best = Some(key);
            }
        }
        nodes[i].parent = best.map_or(0, |(_, _, id)| id);
    }
    TraceTree {
        trace_id,
        reason,
        sense,
        latency,
        spans: nodes,
        annotations,
        truncated_spans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1_000)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let clock = SimClock::new();
        let tracer = Tracer::new();
        assert!(!tracer.is_enabled());
        let token = tracer.begin(&clock);
        assert!(token.is_none());
        tracer.record(Layer::Flash, "read", token, clock.now());
        tracer.record_span(Layer::Stripe, "read", t(0), t(10));
        tracer.annotate("retry", t(5));
        assert_eq!(tracer.begin_request(), 0);
        tracer.end_request(SimDuration::from_micros(10), Some("failure"));
        let b = tracer.breakdown();
        assert_eq!(b.requests, 0);
        assert!(b.layers.is_empty());
        assert!(tracer.recent_spans().is_empty());
        assert!(tracer.exemplars().is_empty());
        assert!(tracer.annotation_counts().is_empty());
    }

    #[test]
    fn clones_share_the_recorder() {
        let tracer = Tracer::new();
        let other = tracer.clone();
        assert!(tracer.same_recorder(&other));
        tracer.set_enabled(true);
        assert!(other.is_enabled());
        other.record_span(Layer::Backend, "read", t(0), t(100));
        let b = tracer.breakdown();
        assert_eq!(b.layer(Layer::Backend).unwrap().spans, 1);
    }

    #[test]
    fn breakdown_aggregates_per_layer() {
        let tracer = Tracer::new();
        tracer.set_enabled(true);
        tracer.begin_request();
        tracer.record_span(Layer::Stripe, "read", t(0), t(40));
        tracer.record_span(Layer::Flash, "read", t(0), t(30));
        tracer.end_request(SimDuration::from_micros(40), None);
        tracer.begin_request();
        tracer.record_span(Layer::Stripe, "read", t(40), t(100));
        tracer.end_request(SimDuration::from_micros(60), None);
        let b = tracer.breakdown();
        assert_eq!(b.requests, 2);
        let stripe = b.layer(Layer::Stripe).unwrap();
        assert_eq!(stripe.spans, 2);
        assert_eq!(stripe.total, SimDuration::from_micros(100));
        let flash = b.layer(Layer::Flash).unwrap();
        assert_eq!(flash.total, SimDuration::from_micros(30));
        // Exclusive stripe time subtracts nested flash time.
        assert_eq!(b.exclusive(Layer::Stripe), SimDuration::from_micros(70));
        assert_eq!(b.exclusive(Layer::Flash), SimDuration::from_micros(30));
    }

    #[test]
    fn exclusive_cache_subtracts_target_and_backend() {
        let tracer = Tracer::new();
        tracer.set_enabled(true);
        tracer.record_span(Layer::Cache, "request", t(0), t(100));
        tracer.record_span(Layer::Target, "read", t(0), t(30));
        tracer.record_span(Layer::Backend, "read", t(30), t(90));
        let b = tracer.breakdown();
        assert_eq!(b.exclusive(Layer::Cache), SimDuration::from_micros(10));
    }

    #[test]
    fn exclusive_nesting_covers_new_layers() {
        let tracer = Tracer::new();
        tracer.set_enabled(true);
        tracer.record_span(Layer::Placement, "request", t(0), t(120));
        tracer.record_span(Layer::Cache, "request", t(0), t(100));
        tracer.record_span(Layer::Target, "write", t(0), t(80));
        tracer.record_span(Layer::Journal, "append", t(10), t(20));
        tracer.record_span(Layer::Stripe, "store", t(20), t(70));
        let b = tracer.breakdown();
        assert_eq!(b.exclusive(Layer::Placement), SimDuration::from_micros(20));
        assert_eq!(b.exclusive(Layer::Target), SimDuration::from_micros(20));
        assert_eq!(b.exclusive(Layer::Journal), SimDuration::from_micros(10));
    }

    #[test]
    fn recent_spans_are_bounded_and_ordered() {
        let tracer = Tracer::new();
        tracer.set_enabled(true);
        for i in 0..(DEFAULT_RECENT_SPANS as u64 + 10) {
            tracer.record_span(Layer::Flash, "read", t(i), t(i + 1));
        }
        let spans = tracer.recent_spans();
        assert_eq!(spans.len(), DEFAULT_RECENT_SPANS);
        // Oldest retained span is number 10; order is oldest → newest.
        assert_eq!(spans[0].start, t(10));
        assert_eq!(
            spans.last().unwrap().start,
            t(DEFAULT_RECENT_SPANS as u64 + 9)
        );
        for w in spans.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
    }

    #[test]
    fn reset_clears_but_keeps_enabled() {
        let tracer = Tracer::new();
        tracer.set_enabled(true);
        tracer.begin_request();
        tracer.record_span(Layer::Flash, "read", t(0), t(5));
        tracer.annotate("retry", t(3));
        tracer.end_request(SimDuration::from_micros(5), Some("failure"));
        tracer.reset();
        assert!(tracer.is_enabled());
        let b = tracer.breakdown();
        assert_eq!(b.requests, 0);
        assert!(b.layers.is_empty());
        assert!(tracer.recent_spans().is_empty());
        assert!(tracer.exemplars().is_empty());
        assert!(tracer.annotation_counts().is_empty());
    }

    #[test]
    fn layer_names_are_stable() {
        let names: Vec<&str> = Layer::ALL.iter().map(|l| l.as_str()).collect();
        assert_eq!(
            names,
            [
                "cache",
                "target",
                "stripe",
                "flash",
                "backend",
                "journal",
                "placement"
            ]
        );
    }

    #[test]
    fn sense_coded_requests_retain_their_tree() {
        let tracer = Tracer::new();
        tracer.set_enabled(true);
        let id = tracer.begin_request();
        tracer.record_span(Layer::Cache, "read", t(0), t(100));
        tracer.record_span(Layer::Target, "read", t(0), t(80));
        tracer.record_span(Layer::Stripe, "read", t(10), t(70));
        tracer.record_span(Layer::Flash, "read", t(20), t(60));
        tracer.annotate("retry", t(30));
        tracer.end_request(SimDuration::from_micros(100), Some("medium-error"));
        let exemplars = tracer.exemplars();
        assert_eq!(exemplars.len(), 1);
        let tree = &exemplars[0];
        assert_eq!(tree.trace_id, id);
        assert_eq!(tree.reason, "sense");
        assert_eq!(tree.sense, Some("medium-error"));
        assert_eq!(tree.spans.len(), 4);
        // Cache is root, target under cache, stripe under target, flash
        // under stripe: full causal chain.
        assert_eq!(tree.spans[0].parent, 0);
        assert_eq!(tree.spans[1].parent, tree.spans[0].id);
        assert_eq!(tree.spans[2].parent, tree.spans[1].id);
        assert_eq!(tree.spans[3].parent, tree.spans[2].id);
        assert_eq!(tree.annotations.len(), 1);
        assert_eq!(tree.annotations[0].label, "retry");
    }

    #[test]
    fn placement_span_roots_the_cluster_tree() {
        let tracer = Tracer::new();
        tracer.set_enabled(true);
        tracer.begin_request();
        // Cluster wraps the node's own request scope.
        tracer.begin_request();
        tracer.record_span(Layer::Cache, "read", t(0), t(90));
        tracer.record_span(Layer::Backend, "read", t(10), t(80));
        tracer.end_request(SimDuration::from_micros(90), None);
        tracer.record_span(Layer::Placement, "request", t(0), t(100));
        tracer.end_request(SimDuration::from_micros(100), Some("recovered-error"));
        let b = tracer.breakdown();
        // Nested begin_request does not mint a second trace.
        assert_eq!(b.requests, 1);
        let exemplars = tracer.exemplars();
        assert_eq!(exemplars.len(), 1);
        let tree = &exemplars[0];
        let placement = tree
            .spans
            .iter()
            .find(|s| s.layer == Layer::Placement)
            .unwrap();
        let cache = tree.spans.iter().find(|s| s.layer == Layer::Cache).unwrap();
        let backend = tree
            .spans
            .iter()
            .find(|s| s.layer == Layer::Backend)
            .unwrap();
        assert_eq!(placement.parent, 0);
        assert_eq!(cache.parent, placement.id);
        assert_eq!(backend.parent, cache.id);
    }

    #[test]
    fn slow_exemplars_keep_the_top_k_deterministically() {
        let tracer = Tracer::new();
        tracer.set_enabled(true);
        for i in 0..(SLOW_EXEMPLARS_CAP as u64 + 6) {
            tracer.begin_request();
            tracer.record_span(Layer::Cache, "read", t(i * 1000), t(i * 1000 + 10 + i));
            tracer.end_request(SimDuration::from_micros(10 + i), None);
        }
        let exemplars = tracer.exemplars();
        assert_eq!(exemplars.len(), SLOW_EXEMPLARS_CAP);
        // The slowest K survive; all retained latencies beat the evicted.
        let min = exemplars.iter().map(|e| e.latency).min().unwrap();
        assert_eq!(min, SimDuration::from_micros(10 + 6));
        assert!(exemplars.iter().all(|e| e.reason == "slow"));
        // Ties do not evict: replaying the minimum latency keeps the set.
        let before: Vec<u64> = exemplars.iter().map(|e| e.trace_id).collect();
        tracer.begin_request();
        tracer.record_span(Layer::Cache, "read", t(900_000), t(900_016));
        tracer.end_request(min, None);
        let after: Vec<u64> = tracer.exemplars().iter().map(|e| e.trace_id).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn tree_span_buffer_is_bounded() {
        let tracer = Tracer::new();
        tracer.set_enabled(true);
        tracer.begin_request();
        for i in 0..(MAX_TREE_SPANS as u64 + 5) {
            tracer.record_span(Layer::Flash, "read", t(i), t(i + 1));
        }
        tracer.end_request(SimDuration::from_micros(1), Some("failure"));
        let exemplars = tracer.exemplars();
        assert_eq!(exemplars.len(), 1);
        assert_eq!(exemplars[0].spans.len(), MAX_TREE_SPANS);
        assert_eq!(exemplars[0].truncated_spans, 5);
        // The aggregate breakdown still counted every span.
        assert_eq!(
            tracer.breakdown().layer(Layer::Flash).unwrap().spans,
            MAX_TREE_SPANS as u64 + 5
        );
    }

    #[test]
    fn annotation_totals_count_outside_requests() {
        let tracer = Tracer::new();
        tracer.set_enabled(true);
        tracer.annotate("qos-stall", t(1));
        tracer.annotate("qos-stall", t(2));
        tracer.annotate("retry", t(3));
        assert_eq!(
            tracer.annotation_counts(),
            vec![("qos-stall", 2), ("retry", 1)]
        );
    }
}
