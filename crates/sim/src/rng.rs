//! Seed-deterministic random number helpers.
//!
//! Every stochastic component in the workspace (workload synthesis, object
//! size sampling, placement jitter) draws from a [`DetRng`] created from an
//! explicit seed, so that a given experiment configuration always produces
//! bit-identical results. Independent components should derive their own
//! streams with [`DetRng::derive`] rather than sharing one generator, so
//! that adding draws in one component does not perturb another.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random number generator with named substreams.
///
/// # Examples
///
/// ```
/// use reo_sim::rng::DetRng;
/// use rand::Rng;
///
/// let mut a = DetRng::from_seed(42);
/// let mut b = DetRng::from_seed(42);
/// assert_eq!(a.random::<u64>(), b.random::<u64>());
///
/// // Substreams with different labels are independent but reproducible.
/// let mut sizes = DetRng::from_seed(42).derive("sizes");
/// let mut popularity = DetRng::from_seed(42).derive("popularity");
/// let _ = (sizes.random::<f64>(), popularity.random::<f64>());
/// ```
#[derive(Clone, Debug)]
pub struct DetRng {
    seed: u64,
    inner: SmallRng,
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        DetRng {
            seed,
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// The seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent, reproducible substream named `label`.
    ///
    /// The substream seed is a hash of `(seed, label)`, so the same
    /// `(seed, label)` pair always yields the same stream regardless of how
    /// many draws have been made from `self`.
    pub fn derive(&self, label: &str) -> DetRng {
        let sub = splitmix(self.seed ^ fnv1a(label.as_bytes()));
        DetRng::from_seed(sub)
    }

    /// Samples a value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Samples an integer uniformly from `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "range must be non-empty");
        self.inner.random_range(0..n)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.inner.random::<f64>() < p
    }

    /// Samples from a standard normal distribution via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        // Box–Muller transform: robust, no rejection loop, good enough for
        // workload synthesis.
        let u1: f64 = self.inner.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = self.inner.random();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Samples from a lognormal distribution with the given parameters of
    /// the underlying normal (`mu`, `sigma`).
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.standard_normal()).exp()
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::from_seed(7);
        let mut b = DetRng::from_seed(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::from_seed(1);
        let mut b = DetRng::from_seed(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn derive_is_stable_and_label_sensitive() {
        let root = DetRng::from_seed(99);
        let mut s1 = root.derive("sizes");
        let mut s2 = DetRng::from_seed(99).derive("sizes");
        assert_eq!(s1.next_u64(), s2.next_u64());
        let mut other = root.derive("popularity");
        assert_ne!(
            DetRng::from_seed(99).derive("sizes").next_u64(),
            other.next_u64()
        );
    }

    #[test]
    fn derive_independent_of_draw_position() {
        let mut root = DetRng::from_seed(5);
        let d1 = root.derive("x");
        let _ = root.next_u64();
        let _ = root.next_u64();
        let d2 = root.derive("x");
        assert_eq!(d1.seed(), d2.seed());
    }

    #[test]
    fn below_respects_bounds() {
        let mut rng = DetRng::from_seed(11);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn below_zero_panics() {
        DetRng::from_seed(0).below(0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::from_seed(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = DetRng::from_seed(1234);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.1, "var = {var}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = DetRng::from_seed(8);
        for _ in 0..1000 {
            assert!(rng.lognormal(1.0, 0.5) > 0.0);
        }
    }
}
