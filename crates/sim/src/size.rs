//! Byte-size newtype used across the workspace.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A number of bytes.
///
/// Object sizes, chunk sizes, cache capacities, and transfer volumes across
/// the workspace are all `ByteSize` rather than bare `u64`, so they cannot be
/// confused with counts or identifiers.
///
/// # Examples
///
/// ```
/// use reo_sim::ByteSize;
///
/// let chunk = ByteSize::from_kib(64);
/// let object = ByteSize::from_mib(4);
/// assert_eq!(object / chunk, 64);
/// assert_eq!(chunk * 4, ByteSize::from_kib(256));
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Creates a size of `bytes` bytes.
    pub const fn from_bytes(bytes: u64) -> Self {
        ByteSize(bytes)
    }

    /// Creates a size of `kib` kibibytes (1024 bytes).
    pub const fn from_kib(kib: u64) -> Self {
        ByteSize(kib * 1024)
    }

    /// Creates a size of `mib` mebibytes.
    pub const fn from_mib(mib: u64) -> Self {
        ByteSize(mib * 1024 * 1024)
    }

    /// Creates a size of `gib` gibibytes.
    pub const fn from_gib(gib: u64) -> Self {
        ByteSize(gib * 1024 * 1024 * 1024)
    }

    /// The size in bytes.
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// The size in fractional mebibytes.
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// The size in fractional gibibytes.
    pub fn as_gib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Returns `true` if the size is zero bytes.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `self - rhs`, or zero if `rhs > self`.
    pub fn saturating_sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }

    /// The number of `chunk`-sized pieces needed to hold `self`, i.e.
    /// division rounding up.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn div_ceil(self, chunk: ByteSize) -> u64 {
        assert!(!chunk.is_zero(), "chunk size must be non-zero");
        self.0.div_ceil(chunk.0)
    }

    /// Scales the size by a non-negative float, rounding to the nearest byte.
    ///
    /// Useful for "X% of the data set" style cache-size configuration.
    pub fn scale(self, factor: f64) -> ByteSize {
        debug_assert!(factor >= 0.0, "scale factor must be non-negative");
        ByteSize((self.0 as f64 * factor).round() as u64)
    }

    /// Returns the smaller of two sizes.
    pub fn min(self, other: ByteSize) -> ByteSize {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two sizes.
    pub fn max(self, other: ByteSize) -> ByteSize {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Debug for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ByteSize({self})")
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= 1024 * 1024 * 1024 {
            write!(f, "{:.2}GiB", b as f64 / (1024.0 * 1024.0 * 1024.0))
        } else if b >= 1024 * 1024 {
            write!(f, "{:.2}MiB", b as f64 / (1024.0 * 1024.0))
        } else if b >= 1024 {
            write!(f, "{:.2}KiB", b as f64 / 1024.0)
        } else {
            write!(f, "{b}B")
        }
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 - rhs.0)
    }
}

impl SubAssign for ByteSize {
    fn sub_assign(&mut self, rhs: ByteSize) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 * rhs)
    }
}

impl Div<ByteSize> for ByteSize {
    /// Whole number of `rhs`-sized pieces that fit in `self` (floor).
    type Output = u64;
    fn div(self, rhs: ByteSize) -> u64 {
        self.0 / rhs.0
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, Add::add)
    }
}

impl From<u64> for ByteSize {
    fn from(bytes: u64) -> Self {
        ByteSize(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors() {
        assert_eq!(ByteSize::from_kib(1).as_bytes(), 1024);
        assert_eq!(ByteSize::from_mib(1), ByteSize::from_kib(1024));
        assert_eq!(ByteSize::from_gib(1), ByteSize::from_mib(1024));
    }

    #[test]
    fn div_ceil_rounds_up() {
        let chunk = ByteSize::from_kib(64);
        assert_eq!(ByteSize::from_kib(64).div_ceil(chunk), 1);
        assert_eq!(ByteSize::from_kib(65).div_ceil(chunk), 2);
        assert_eq!(ByteSize::ZERO.div_ceil(chunk), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn div_ceil_zero_chunk_panics() {
        let _ = ByteSize::from_kib(1).div_ceil(ByteSize::ZERO);
    }

    #[test]
    fn scale_is_percentage_friendly() {
        let data_set = ByteSize::from_gib(17);
        let cache = data_set.scale(0.10);
        let exact = 17f64 * 1024.0 * 1024.0 * 1024.0 * 0.10;
        assert!((cache.as_bytes() as f64 - exact).abs() <= 1.0);
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = ByteSize::from_kib(1);
        let b = ByteSize::from_kib(2);
        assert_eq!(b.saturating_sub(a), a);
        assert_eq!(a.saturating_sub(b), ByteSize::ZERO);
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(ByteSize::from_bytes(512).to_string(), "512B");
        assert_eq!(ByteSize::from_kib(64).to_string(), "64.00KiB");
        assert_eq!(ByteSize::from_mib(4).to_string(), "4.00MiB");
        assert_eq!(ByteSize::from_gib(2).to_string(), "2.00GiB");
    }

    #[test]
    fn sum_of_sizes() {
        let total: ByteSize = (1..=3).map(ByteSize::from_kib).sum();
        assert_eq!(total, ByteSize::from_kib(6));
    }
}
