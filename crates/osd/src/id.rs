//! Object namespace: partition IDs, object IDs, and well-known objects.
//!
//! The OSD-2 standard gives every object an exclusive `(PID, OID)` pair.
//! PIDs and OIDs below `0x10000` are reserved; the root object is
//! `(0x0, 0x0)`. The Linux `exofs` implementation additionally reserves
//! OIDs `0x10000`–`0x10002` of the first partition for the Super Block,
//! Device Table, and Root Directory metadata objects, and Reo reserves OID
//! `0x10004` as its control mailbox (Table I, Sections II-A and IV-C.2).

use std::fmt;

use serde::{Deserialize, Serialize};

/// The first non-reserved identifier value for both PIDs and OIDs.
pub const FIRST_VALID_ID: u64 = 0x10000;

/// A partition identifier within an OSD logical unit.
///
/// # Examples
///
/// ```
/// use reo_osd::PartitionId;
///
/// assert!(PartitionId::FIRST.is_valid_partition());
/// assert!(!PartitionId::ROOT.is_valid_partition());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PartitionId(u64);

impl PartitionId {
    /// The PID of the root object, `0x0`.
    pub const ROOT: PartitionId = PartitionId(0);

    /// The first regular partition, `0x10000`. `exofs` stores its reserved
    /// metadata objects here.
    pub const FIRST: PartitionId = PartitionId(FIRST_VALID_ID);

    /// Creates a partition ID from a raw value.
    pub const fn new(raw: u64) -> Self {
        PartitionId(raw)
    }

    /// The raw 64-bit value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// `true` when the PID denotes a regular partition (`>= 0x10000`).
    pub const fn is_valid_partition(self) -> bool {
        self.0 >= FIRST_VALID_ID
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid:{:#x}", self.0)
    }
}

/// An object identifier within a partition.
///
/// # Examples
///
/// ```
/// use reo_osd::ObjectId;
///
/// assert_eq!(ObjectId::SUPER_BLOCK.as_u64(), 0x10000);
/// assert_eq!(ObjectId::CONTROL.as_u64(), 0x10004);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId(u64);

impl ObjectId {
    /// The OID of the root / partition object, `0x0`.
    pub const ZERO: ObjectId = ObjectId(0);

    /// Reserved OID of the Super Block object (`exofs`).
    pub const SUPER_BLOCK: ObjectId = ObjectId(0x10000);

    /// Reserved OID of the Device Table object (`exofs`).
    pub const DEVICE_TABLE: ObjectId = ObjectId(0x10001);

    /// Reserved OID of the Root Directory object (`exofs`).
    pub const ROOT_DIRECTORY: ObjectId = ObjectId(0x10002);

    /// Reserved OID of the Reo control mailbox object (Section IV-C.2 and V
    /// of the paper: "a special object (reserved OID 0x10004) as a
    /// communication point").
    pub const CONTROL: ObjectId = ObjectId(0x10004);

    /// Creates an object ID from a raw value.
    pub const fn new(raw: u64) -> Self {
        ObjectId(raw)
    }

    /// The raw 64-bit value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// `true` when the OID is in the regular (non-reserved) range and is
    /// not one of the `exofs`/Reo reserved metadata objects.
    pub const fn is_regular_user_oid(self) -> bool {
        self.0 > ObjectId::CONTROL.0
    }

    /// `true` for the reserved metadata OIDs (Super Block, Device Table,
    /// Root Directory) and the control object.
    pub const fn is_reserved_metadata(self) -> bool {
        self.0 >= ObjectId::SUPER_BLOCK.0 && self.0 <= ObjectId::CONTROL.0
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "oid:{:#x}", self.0)
    }
}

/// A fully qualified object address: `(PID, OID)`.
///
/// # Examples
///
/// ```
/// use reo_osd::{ObjectId, ObjectKey, ObjectKind, PartitionId};
///
/// let root = ObjectKey::new(PartitionId::ROOT, ObjectId::ZERO);
/// assert_eq!(root.kind(), ObjectKind::Root);
///
/// let sb = ObjectKey::new(PartitionId::FIRST, ObjectId::SUPER_BLOCK);
/// assert_eq!(sb.kind(), ObjectKind::SuperBlock);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectKey {
    pid: PartitionId,
    oid: ObjectId,
}

impl ObjectKey {
    /// Creates a key from its parts.
    pub const fn new(pid: PartitionId, oid: ObjectId) -> Self {
        ObjectKey { pid, oid }
    }

    /// Convenience constructor for a regular user object.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is not a valid partition or `oid` is reserved.
    pub fn user(pid: PartitionId, oid: ObjectId) -> Self {
        assert!(
            pid.is_valid_partition(),
            "user objects need a real partition"
        );
        assert!(oid.is_regular_user_oid(), "oid {oid} is reserved");
        ObjectKey { pid, oid }
    }

    /// The key of the control mailbox object in the first partition.
    pub const fn control() -> Self {
        ObjectKey::new(PartitionId::FIRST, ObjectId::CONTROL)
    }

    /// The partition component.
    pub const fn pid(self) -> PartitionId {
        self.pid
    }

    /// The object component.
    pub const fn oid(self) -> ObjectId {
        self.oid
    }

    /// Classifies the key per Table I of the paper.
    pub fn kind(self) -> ObjectKind {
        if self.pid == PartitionId::ROOT && self.oid == ObjectId::ZERO {
            return ObjectKind::Root;
        }
        if self.pid.is_valid_partition() && self.oid == ObjectId::ZERO {
            return ObjectKind::Partition;
        }
        if self.pid == PartitionId::FIRST {
            match self.oid {
                ObjectId::SUPER_BLOCK => return ObjectKind::SuperBlock,
                ObjectId::DEVICE_TABLE => return ObjectKind::DeviceTable,
                ObjectId::ROOT_DIRECTORY => return ObjectKind::RootDirectory,
                ObjectId::CONTROL => return ObjectKind::Control,
                _ => {}
            }
        }
        ObjectKind::User
    }

    /// `true` when the object is one of the OSD/system metadata objects
    /// that Reo places in class 0 (Group #0 in Section IV-C.1).
    pub fn is_system_metadata(self) -> bool {
        !matches!(self.kind(), ObjectKind::User | ObjectKind::Control)
    }
}

impl fmt::Display for ObjectKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.pid, self.oid)
    }
}

/// The object taxonomy of Table I.
///
/// OSD-2 defines Root, Partition, Collection, and User objects; `exofs`
/// reserves three metadata user objects, and Reo adds a control mailbox.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectKind {
    /// The per-device root object `(0x0, 0x0)` recording global OSD info.
    Root,
    /// A partition object `(pid, 0x0)`.
    Partition,
    /// A collection object (fast indexing of user objects).
    Collection,
    /// A regular user data object.
    User,
    /// The `exofs` Super Block metadata object.
    SuperBlock,
    /// The `exofs` Device Table metadata object.
    DeviceTable,
    /// The `exofs` Root Directory metadata object.
    RootDirectory,
    /// The Reo control mailbox (OID `0x10004`).
    Control,
}

impl fmt::Display for ObjectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ObjectKind::Root => "root",
            ObjectKind::Partition => "partition",
            ObjectKind::Collection => "collection",
            ObjectKind::User => "user",
            ObjectKind::SuperBlock => "super-block",
            ObjectKind::DeviceTable => "device-table",
            ObjectKind::RootDirectory => "root-directory",
            ObjectKind::Control => "control",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_kinds() {
        // Root object: PID 0x0, OID 0x0.
        assert_eq!(
            ObjectKey::new(PartitionId::ROOT, ObjectId::ZERO).kind(),
            ObjectKind::Root
        );
        // Partition object: PID 0x10000+, OID 0x0.
        assert_eq!(
            ObjectKey::new(PartitionId::new(0x20000), ObjectId::ZERO).kind(),
            ObjectKind::Partition
        );
        // Reserved exofs metadata in partition 0x10000.
        assert_eq!(
            ObjectKey::new(PartitionId::FIRST, ObjectId::SUPER_BLOCK).kind(),
            ObjectKind::SuperBlock
        );
        assert_eq!(
            ObjectKey::new(PartitionId::FIRST, ObjectId::DEVICE_TABLE).kind(),
            ObjectKind::DeviceTable
        );
        assert_eq!(
            ObjectKey::new(PartitionId::FIRST, ObjectId::ROOT_DIRECTORY).kind(),
            ObjectKind::RootDirectory
        );
        assert_eq!(ObjectKey::control().kind(), ObjectKind::Control);
        // A regular user object.
        assert_eq!(
            ObjectKey::new(PartitionId::FIRST, ObjectId::new(0x10005)).kind(),
            ObjectKind::User
        );
        // Reserved OIDs only special in the first partition.
        assert_eq!(
            ObjectKey::new(PartitionId::new(0x20000), ObjectId::SUPER_BLOCK).kind(),
            ObjectKind::User
        );
    }

    #[test]
    fn system_metadata_flag() {
        assert!(ObjectKey::new(PartitionId::ROOT, ObjectId::ZERO).is_system_metadata());
        assert!(ObjectKey::new(PartitionId::FIRST, ObjectId::SUPER_BLOCK).is_system_metadata());
        assert!(!ObjectKey::control().is_system_metadata());
        assert!(!ObjectKey::user(PartitionId::FIRST, ObjectId::new(0x99999)).is_system_metadata());
    }

    #[test]
    fn reserved_ranges() {
        assert!(ObjectId::SUPER_BLOCK.is_reserved_metadata());
        assert!(ObjectId::CONTROL.is_reserved_metadata());
        assert!(!ObjectId::new(0x10005).is_reserved_metadata());
        assert!(ObjectId::new(0x10005).is_regular_user_oid());
        assert!(!ObjectId::new(0x42).is_regular_user_oid());
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn user_key_rejects_reserved_oid() {
        let _ = ObjectKey::user(PartitionId::FIRST, ObjectId::SUPER_BLOCK);
    }

    #[test]
    #[should_panic(expected = "partition")]
    fn user_key_rejects_root_pid() {
        let _ = ObjectKey::user(PartitionId::ROOT, ObjectId::new(0x99999));
    }

    #[test]
    fn display_formats() {
        let key = ObjectKey::new(PartitionId::FIRST, ObjectId::new(0x10005));
        assert_eq!(key.to_string(), "(pid:0x10000, oid:0x10005)");
        assert_eq!(ObjectKind::SuperBlock.to_string(), "super-block");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = ObjectKey::new(PartitionId::FIRST, ObjectId::new(5));
        let b = ObjectKey::new(PartitionId::FIRST, ObjectId::new(6));
        let c = ObjectKey::new(PartitionId::new(0x20000), ObjectId::new(0));
        assert!(a < b && b < c);
    }
}
