//! Semantic object classes — Table II of the Reo paper.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The four semantic importance classes Reo assigns to cached objects.
///
/// Lower class IDs are more important and receive stronger redundancy
/// (Section IV-C.1):
///
/// | Class | Name            | Redundancy policy            |
/// |-------|-----------------|------------------------------|
/// | 0     | System metadata | full replication             |
/// | 1     | Dirty data      | full replication             |
/// | 2     | Hot clean data  | 2 parity chunks per stripe   |
/// | 3     | Cold clean data | no redundancy                |
///
/// # Examples
///
/// ```
/// use reo_osd::ObjectClass;
///
/// assert!(ObjectClass::Metadata < ObjectClass::ColdClean);
/// assert_eq!(ObjectClass::HotClean.id(), 2);
/// assert_eq!(ObjectClass::from_id(1), Some(ObjectClass::Dirty));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum ObjectClass {
    /// Group #0: OSD/system metadata (root, partition, super block, device
    /// table, root directory objects, and application metadata).
    Metadata = 0,
    /// Group #1: dirty cache data — the only valid copy in the system.
    Dirty = 1,
    /// Group #2: frequently read, clean data.
    HotClean = 2,
    /// Group #3: infrequently read, clean data — the cache majority.
    ColdClean = 3,
}

impl ObjectClass {
    /// All classes in priority order (most important first).
    pub const ALL: [ObjectClass; 4] = [
        ObjectClass::Metadata,
        ObjectClass::Dirty,
        ObjectClass::HotClean,
        ObjectClass::ColdClean,
    ];

    /// The numeric class ID used on the wire (`CID` of the `#SETID#`
    /// command).
    pub const fn id(self) -> u8 {
        self as u8
    }

    /// Parses a wire class ID.
    pub const fn from_id(id: u8) -> Option<ObjectClass> {
        match id {
            0 => Some(ObjectClass::Metadata),
            1 => Some(ObjectClass::Dirty),
            2 => Some(ObjectClass::HotClean),
            3 => Some(ObjectClass::ColdClean),
            _ => None,
        }
    }

    /// `true` if this class is replicated across all devices rather than
    /// parity-protected.
    pub const fn is_replicated(self) -> bool {
        matches!(self, ObjectClass::Metadata | ObjectClass::Dirty)
    }

    /// Recovery priority: lower values are reconstructed first
    /// (Section IV-D: "from Class 0 to Class 3, in that order").
    pub const fn recovery_priority(self) -> u8 {
        self.id()
    }
}

impl fmt::Display for ObjectClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ObjectClass::Metadata => "metadata",
            ObjectClass::Dirty => "dirty",
            ObjectClass::HotClean => "hot-clean",
            ObjectClass::ColdClean => "cold-clean",
        };
        f.write_str(s)
    }
}

/// The attributes Table II uses to derive a class: is the object system
/// metadata, is it read-frequently ("hot"), and is it dirty.
///
/// # Examples
///
/// ```
/// use reo_osd::{ClassifierInputs, ObjectClass};
///
/// // Row B of Table II: dirty, read frequency irrelevant.
/// let b = ClassifierInputs { metadata: false, hot: true, dirty: true };
/// assert_eq!(b.classify(), ObjectClass::Dirty);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClassifierInputs {
    /// The object is system metadata (Table II column "Metadata").
    pub metadata: bool,
    /// The object is read-frequently (`H > H_hot`; column "Read-freq").
    pub hot: bool,
    /// The object holds unsynchronized updates (column "Dirty").
    pub dirty: bool,
}

impl ClassifierInputs {
    /// Applies Table II. Metadata dominates, then dirtiness, then hotness.
    pub fn classify(self) -> ObjectClass {
        if self.metadata {
            ObjectClass::Metadata
        } else if self.dirty {
            ObjectClass::Dirty
        } else if self.hot {
            ObjectClass::HotClean
        } else {
            ObjectClass::ColdClean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustively checks Table II: all eight input combinations.
    #[test]
    fn table_ii_truth_table() {
        use ObjectClass::*;
        let cases = [
            // (metadata, hot, dirty) -> class
            ((true, false, false), Metadata),
            ((true, true, false), Metadata), // "~" = irrelevant
            ((true, false, true), Metadata),
            ((true, true, true), Metadata),
            ((false, false, true), Dirty), // row B: read-freq irrelevant
            ((false, true, true), Dirty),
            ((false, true, false), HotClean),   // row C
            ((false, false, false), ColdClean), // row D
        ];
        for ((metadata, hot, dirty), want) in cases {
            let got = ClassifierInputs {
                metadata,
                hot,
                dirty,
            }
            .classify();
            assert_eq!(got, want, "inputs ({metadata},{hot},{dirty})");
        }
    }

    #[test]
    fn ids_roundtrip() {
        for class in ObjectClass::ALL {
            assert_eq!(ObjectClass::from_id(class.id()), Some(class));
        }
        assert_eq!(ObjectClass::from_id(4), None);
        assert_eq!(ObjectClass::from_id(255), None);
    }

    #[test]
    fn priority_order_matches_importance() {
        let mut sorted = ObjectClass::ALL;
        sorted.sort_by_key(|c| c.recovery_priority());
        assert_eq!(sorted, ObjectClass::ALL);
    }

    #[test]
    fn replication_policy() {
        assert!(ObjectClass::Metadata.is_replicated());
        assert!(ObjectClass::Dirty.is_replicated());
        assert!(!ObjectClass::HotClean.is_replicated());
        assert!(!ObjectClass::ColdClean.is_replicated());
    }

    #[test]
    fn display_names() {
        assert_eq!(ObjectClass::HotClean.to_string(), "hot-clean");
    }
}
