//! Command status codes — Table III of the Reo paper.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The sense codes the Reo object storage returns for commands and queries.
///
/// Reproduces Table III verbatim:
///
/// | Code  | Meaning                                       |
/// |-------|-----------------------------------------------|
/// | 0     | The command is successful                     |
/// | -1    | The command is unsuccessful                   |
/// | 0x63  | Data is corrupted                             |
/// | 0x64  | The cache is full                             |
/// | 0x65  | Recovery starts                               |
/// | 0x66  | Recovery ends                                 |
/// | 0x67  | The allocated space for data redundancy is full |
///
/// Two codes extend the table for partial (sub-device) failures, modeled
/// on the T10 SCSI sense keys the paper's OSD layer mirrors:
///
/// | Code  | Meaning                                       |
/// |-------|-----------------------------------------------|
/// | 0x68  | Medium error: a chunk read hit corrupt media (T10 `3h`) |
/// | 0x69  | Recovered error: data was served after repair (T10 `1h`) |
/// | 0x6A  | Not ready: the target is replaying its journal after a restart (T10 `2h`) |
///
/// # Examples
///
/// ```
/// use reo_osd::SenseCode;
///
/// assert_eq!(SenseCode::Success.as_i16(), 0);
/// assert_eq!(SenseCode::from_i16(0x63), Some(SenseCode::Corrupted));
/// assert!(SenseCode::Corrupted.is_error());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SenseCode {
    /// `0`: the command is successful.
    Success,
    /// `-1`: the command is unsuccessful.
    Failure,
    /// `0x63`: the addressed data is corrupted (and, for queries during an
    /// outage, irrecoverable).
    Corrupted,
    /// `0x64`: the cache is full — a replacement is demanded.
    CacheFull,
    /// `0x65`: recovery has started (a device failure occurred).
    RecoveryStarts,
    /// `0x66`: recovery has ended.
    RecoveryEnds,
    /// `0x67`: the space allocated for data redundancy is full.
    RedundancySpaceFull,
    /// `0x68`: a chunk read hit corrupt media (the analog of the T10
    /// `MEDIUM ERROR` sense key). The addressed data could not be served
    /// from flash; redundancy may still recover it.
    MediumError,
    /// `0x69`: the command succeeded, but only after error recovery — a
    /// degraded read or retried transient fault (the analog of the T10
    /// `RECOVERED ERROR` sense key). Not an error.
    RecoveredError,
    /// `0x6A`: the target is warming up after a restart — journal replay
    /// has not finished, so the addressed data cannot be served yet (the
    /// analog of the T10 `NOT READY` sense key). Retry after recovery.
    NotReady,
}

impl SenseCode {
    /// The wire value, matching Table III.
    pub const fn as_i16(self) -> i16 {
        match self {
            SenseCode::Success => 0,
            SenseCode::Failure => -1,
            SenseCode::Corrupted => 0x63,
            SenseCode::CacheFull => 0x64,
            SenseCode::RecoveryStarts => 0x65,
            SenseCode::RecoveryEnds => 0x66,
            SenseCode::RedundancySpaceFull => 0x67,
            SenseCode::MediumError => 0x68,
            SenseCode::RecoveredError => 0x69,
            SenseCode::NotReady => 0x6A,
        }
    }

    /// Parses a wire value.
    pub const fn from_i16(raw: i16) -> Option<SenseCode> {
        match raw {
            0 => Some(SenseCode::Success),
            -1 => Some(SenseCode::Failure),
            0x63 => Some(SenseCode::Corrupted),
            0x64 => Some(SenseCode::CacheFull),
            0x65 => Some(SenseCode::RecoveryStarts),
            0x66 => Some(SenseCode::RecoveryEnds),
            0x67 => Some(SenseCode::RedundancySpaceFull),
            0x68 => Some(SenseCode::MediumError),
            0x69 => Some(SenseCode::RecoveredError),
            0x6A => Some(SenseCode::NotReady),
            _ => None,
        }
    }

    /// A stable lower-case label for export (the JSONL `sense_mix`,
    /// `trace`, and flight-recorder records all use these).
    pub const fn label(self) -> &'static str {
        match self {
            SenseCode::Success => "success",
            SenseCode::Failure => "failure",
            SenseCode::Corrupted => "corrupted",
            SenseCode::CacheFull => "cache-full",
            SenseCode::RecoveryStarts => "recovery-starts",
            SenseCode::RecoveryEnds => "recovery-ends",
            SenseCode::RedundancySpaceFull => "redundancy-space-full",
            SenseCode::MediumError => "medium-error",
            SenseCode::RecoveredError => "recovered-error",
            SenseCode::NotReady => "not-ready",
        }
    }

    /// `true` when the completion counts as *available* to the client:
    /// hard errors ([`SenseCode::is_error`]) and `NotReady` shedding do
    /// not; recovered errors do. Feeds the availability SLO.
    pub const fn is_available(self) -> bool {
        !self.is_error() && !matches!(self, SenseCode::NotReady)
    }

    /// `true` for codes indicating the command did not succeed outright.
    ///
    /// Informational codes (recovery start/end, cache full, redundancy
    /// space full) are conditions, not failures, but they are not
    /// [`SenseCode::Success`] either; `Failure`, `Corrupted`, and
    /// `MediumError` are hard errors. `RecoveredError` reports success
    /// with a caveat, matching T10's classification of its `1h` key.
    /// `NotReady` is a retryable condition (the data is not lost, the
    /// target just has not finished replaying its journal), so like T10's
    /// `2h` key it is not classified as a hard error.
    pub const fn is_error(self) -> bool {
        matches!(
            self,
            SenseCode::Failure | SenseCode::Corrupted | SenseCode::MediumError
        )
    }
}

impl fmt::Display for SenseCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SenseCode::Success => "the command is successful",
            SenseCode::Failure => "the command is unsuccessful",
            SenseCode::Corrupted => "data is corrupted",
            SenseCode::CacheFull => "the cache is full",
            SenseCode::RecoveryStarts => "recovery starts",
            SenseCode::RecoveryEnds => "recovery ends",
            SenseCode::RedundancySpaceFull => "the allocated space for data redundancy is full",
            SenseCode::MediumError => "medium error: corrupt media under the addressed data",
            SenseCode::RecoveredError => "the command succeeded after error recovery",
            SenseCode::NotReady => "the target is not ready: journal replay in progress",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [SenseCode; 10] = [
        SenseCode::Success,
        SenseCode::Failure,
        SenseCode::Corrupted,
        SenseCode::CacheFull,
        SenseCode::RecoveryStarts,
        SenseCode::RecoveryEnds,
        SenseCode::RedundancySpaceFull,
        SenseCode::MediumError,
        SenseCode::RecoveredError,
        SenseCode::NotReady,
    ];

    #[test]
    fn table_iii_values() {
        assert_eq!(SenseCode::Success.as_i16(), 0);
        assert_eq!(SenseCode::Failure.as_i16(), -1);
        assert_eq!(SenseCode::Corrupted.as_i16(), 0x63);
        assert_eq!(SenseCode::CacheFull.as_i16(), 0x64);
        assert_eq!(SenseCode::RecoveryStarts.as_i16(), 0x65);
        assert_eq!(SenseCode::RecoveryEnds.as_i16(), 0x66);
        assert_eq!(SenseCode::RedundancySpaceFull.as_i16(), 0x67);
        // Partial-failure extensions, outside Table III's range.
        assert_eq!(SenseCode::MediumError.as_i16(), 0x68);
        assert_eq!(SenseCode::RecoveredError.as_i16(), 0x69);
        assert_eq!(SenseCode::NotReady.as_i16(), 0x6A);
    }

    #[test]
    fn roundtrip_all() {
        for code in ALL {
            assert_eq!(SenseCode::from_i16(code.as_i16()), Some(code));
        }
        assert_eq!(SenseCode::from_i16(0x62), None);
        assert_eq!(SenseCode::from_i16(2), None);
    }

    #[test]
    fn error_classification() {
        assert!(!SenseCode::Success.is_error());
        assert!(SenseCode::Failure.is_error());
        assert!(SenseCode::Corrupted.is_error());
        assert!(!SenseCode::RecoveryStarts.is_error());
        assert!(!SenseCode::CacheFull.is_error());
        assert!(SenseCode::MediumError.is_error());
        assert!(!SenseCode::RecoveredError.is_error());
        assert!(!SenseCode::NotReady.is_error());
    }

    #[test]
    fn labels_are_stable_and_unique() {
        let labels: Vec<&str> = ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels[0], "success");
        assert_eq!(labels[9], "not-ready");
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }

    #[test]
    fn availability_classification() {
        assert!(SenseCode::Success.is_available());
        assert!(SenseCode::RecoveredError.is_available());
        assert!(!SenseCode::NotReady.is_available());
        assert!(!SenseCode::MediumError.is_available());
        assert!(!SenseCode::Failure.is_available());
    }

    #[test]
    fn display_matches_table_descriptions() {
        assert_eq!(SenseCode::CacheFull.to_string(), "the cache is full");
        assert_eq!(SenseCode::Corrupted.to_string(), "data is corrupted");
    }
}
