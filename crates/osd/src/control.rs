//! Control-message wire codec for the Reo mailbox object (OID `0x10004`).
//!
//! Section IV-C.2 of the paper: "We define a special data object (reserved
//! OID 0x10004) as a communication point. All control messages are encoded
//! into a predefined format and written to this special object." Two
//! message types are defined:
//!
//! * **Classification command** — header `#SETID#`, then the PID and OID of
//!   the target object, then the class ID.
//! * **Query command** — header `#QUERY#`, then PID and OID, then the
//!   operation type (`R`/`W`), the offset, and the size.
//!
//! The paper does not pin the field encoding beyond the ASCII headers; we
//! use fixed-width big-endian integers after the header, which keeps
//! messages "a few dozen bytes" as the paper states (a `#SETID#` message is
//! 24 bytes, a `#QUERY#` is 40).

use std::error::Error;
use std::fmt;

use crate::{ObjectClass, ObjectId, ObjectKey, PartitionId};

/// ASCII header of a classification command.
pub const SETID_HEADER: &[u8; 7] = b"#SETID#";
/// ASCII header of a query command.
pub const QUERY_HEADER: &[u8; 7] = b"#QUERY#";

/// The operation type field of a query command.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryOp {
    /// A read query (`R`).
    Read,
    /// A write query (`W`).
    Write,
}

impl QueryOp {
    const fn as_byte(self) -> u8 {
        match self {
            QueryOp::Read => b'R',
            QueryOp::Write => b'W',
        }
    }

    const fn from_byte(b: u8) -> Option<QueryOp> {
        match b {
            b'R' => Some(QueryOp::Read),
            b'W' => Some(QueryOp::Write),
            _ => None,
        }
    }
}

impl fmt::Display for QueryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            QueryOp::Read => "R",
            QueryOp::Write => "W",
        })
    }
}

/// A decoded control message.
///
/// # Examples
///
/// ```
/// use reo_osd::control::{ControlMessage, QueryOp};
/// use reo_osd::{ObjectClass, ObjectKey, ObjectId, PartitionId};
///
/// let key = ObjectKey::user(PartitionId::FIRST, ObjectId::new(0x20000));
/// let q = ControlMessage::Query {
///     key,
///     op: QueryOp::Read,
///     offset: 0,
///     size: 4096,
/// };
/// let bytes = q.encode();
/// assert!(bytes.starts_with(b"#QUERY#"));
/// assert_eq!(ControlMessage::decode(&bytes)?, q);
/// # Ok::<(), reo_osd::control::ControlMessageError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ControlMessage {
    /// `#SETID#` — assign `class` to the object at `key`.
    SetClass {
        /// Target object.
        key: ObjectKey,
        /// The class to assign.
        class: ObjectClass,
    },
    /// `#QUERY#` — query the status of (a byte range of) the object.
    Query {
        /// Target object.
        key: ObjectKey,
        /// Whether the prospective access is a read or a write.
        op: QueryOp,
        /// Byte offset of the queried range.
        offset: u64,
        /// Size in bytes of the queried range.
        size: u64,
    },
}

/// Errors from [`ControlMessage::decode`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ControlMessageError {
    /// The buffer is shorter than the smallest valid message.
    Truncated {
        /// Bytes needed for the detected message type.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// The header matches neither `#SETID#` nor `#QUERY#`.
    UnknownHeader,
    /// A `#SETID#` message carried a class ID outside 0..=3.
    BadClassId(u8),
    /// A `#QUERY#` message carried an operation byte other than `R`/`W`.
    BadQueryOp(u8),
    /// Trailing bytes followed a well-formed message.
    TrailingBytes(usize),
}

impl fmt::Display for ControlMessageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlMessageError::Truncated { needed, got } => {
                write!(f, "message truncated: need {needed} bytes, got {got}")
            }
            ControlMessageError::UnknownHeader => write!(f, "unknown control message header"),
            ControlMessageError::BadClassId(id) => write!(f, "invalid class id {id}"),
            ControlMessageError::BadQueryOp(b) => write!(f, "invalid query op byte {b:#x}"),
            ControlMessageError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after message")
            }
        }
    }
}

impl Error for ControlMessageError {}

const SETID_LEN: usize = 7 + 8 + 8 + 1;
const QUERY_LEN: usize = 7 + 8 + 8 + 1 + 8 + 8;

impl ControlMessage {
    /// Encodes the message to its wire form.
    pub fn encode(&self) -> Vec<u8> {
        match *self {
            ControlMessage::SetClass { key, class } => {
                let mut out = Vec::with_capacity(SETID_LEN);
                out.extend_from_slice(SETID_HEADER);
                out.extend_from_slice(&key.pid().as_u64().to_be_bytes());
                out.extend_from_slice(&key.oid().as_u64().to_be_bytes());
                out.push(class.id());
                out
            }
            ControlMessage::Query {
                key,
                op,
                offset,
                size,
            } => {
                let mut out = Vec::with_capacity(QUERY_LEN);
                out.extend_from_slice(QUERY_HEADER);
                out.extend_from_slice(&key.pid().as_u64().to_be_bytes());
                out.extend_from_slice(&key.oid().as_u64().to_be_bytes());
                out.push(op.as_byte());
                out.extend_from_slice(&offset.to_be_bytes());
                out.extend_from_slice(&size.to_be_bytes());
                out
            }
        }
    }

    /// Decodes a message from its wire form.
    ///
    /// # Errors
    ///
    /// Returns a [`ControlMessageError`] describing the first malformation
    /// encountered; see the variants for the possible conditions.
    pub fn decode(bytes: &[u8]) -> Result<ControlMessage, ControlMessageError> {
        if bytes.len() < 7 {
            return Err(ControlMessageError::Truncated {
                needed: 7,
                got: bytes.len(),
            });
        }
        let header = &bytes[..7];
        if header == SETID_HEADER {
            if bytes.len() < SETID_LEN {
                return Err(ControlMessageError::Truncated {
                    needed: SETID_LEN,
                    got: bytes.len(),
                });
            }
            if bytes.len() > SETID_LEN {
                return Err(ControlMessageError::TrailingBytes(bytes.len() - SETID_LEN));
            }
            let pid = u64::from_be_bytes(bytes[7..15].try_into().expect("8 bytes"));
            let oid = u64::from_be_bytes(bytes[15..23].try_into().expect("8 bytes"));
            let cid = bytes[23];
            let class = ObjectClass::from_id(cid).ok_or(ControlMessageError::BadClassId(cid))?;
            Ok(ControlMessage::SetClass {
                key: ObjectKey::new(PartitionId::new(pid), ObjectId::new(oid)),
                class,
            })
        } else if header == QUERY_HEADER {
            if bytes.len() < QUERY_LEN {
                return Err(ControlMessageError::Truncated {
                    needed: QUERY_LEN,
                    got: bytes.len(),
                });
            }
            if bytes.len() > QUERY_LEN {
                return Err(ControlMessageError::TrailingBytes(bytes.len() - QUERY_LEN));
            }
            let pid = u64::from_be_bytes(bytes[7..15].try_into().expect("8 bytes"));
            let oid = u64::from_be_bytes(bytes[15..23].try_into().expect("8 bytes"));
            let op =
                QueryOp::from_byte(bytes[23]).ok_or(ControlMessageError::BadQueryOp(bytes[23]))?;
            let offset = u64::from_be_bytes(bytes[24..32].try_into().expect("8 bytes"));
            let size = u64::from_be_bytes(bytes[32..40].try_into().expect("8 bytes"));
            Ok(ControlMessage::Query {
                key: ObjectKey::new(PartitionId::new(pid), ObjectId::new(oid)),
                op,
                offset,
                size,
            })
        } else {
            Err(ControlMessageError::UnknownHeader)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn a_key() -> ObjectKey {
        ObjectKey::user(PartitionId::FIRST, ObjectId::new(0x12345))
    }

    #[test]
    fn setid_roundtrip_all_classes() {
        for class in ObjectClass::ALL {
            let msg = ControlMessage::SetClass {
                key: a_key(),
                class,
            };
            let bytes = msg.encode();
            assert_eq!(bytes.len(), SETID_LEN);
            assert_eq!(ControlMessage::decode(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn query_roundtrip() {
        for op in [QueryOp::Read, QueryOp::Write] {
            let msg = ControlMessage::Query {
                key: a_key(),
                op,
                offset: 0xdead_beef,
                size: 0x1000,
            };
            let bytes = msg.encode();
            assert_eq!(bytes.len(), QUERY_LEN);
            assert_eq!(ControlMessage::decode(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn messages_are_a_few_dozen_bytes() {
        // The paper: "a message accounts for only a few dozen bytes".
        // Checked at compile time; the test pins the claim by name.
        const _: () = assert!(SETID_LEN <= 48);
        const _: () = assert!(QUERY_LEN <= 48);
    }

    #[test]
    fn unknown_header_rejected() {
        assert_eq!(
            ControlMessage::decode(b"#NOPE##aaaaaaaaaaaaaaaaaa"),
            Err(ControlMessageError::UnknownHeader)
        );
    }

    #[test]
    fn truncation_rejected() {
        let msg = ControlMessage::SetClass {
            key: a_key(),
            class: ObjectClass::Dirty,
        };
        let bytes = msg.encode();
        for cut in 0..bytes.len() {
            assert!(matches!(
                ControlMessage::decode(&bytes[..cut]),
                Err(ControlMessageError::Truncated { .. })
            ));
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = ControlMessage::SetClass {
            key: a_key(),
            class: ObjectClass::Dirty,
        }
        .encode();
        bytes.push(0);
        assert_eq!(
            ControlMessage::decode(&bytes),
            Err(ControlMessageError::TrailingBytes(1))
        );
    }

    #[test]
    fn bad_class_and_op_rejected() {
        let mut bytes = ControlMessage::SetClass {
            key: a_key(),
            class: ObjectClass::Dirty,
        }
        .encode();
        *bytes.last_mut().unwrap() = 9;
        assert_eq!(
            ControlMessage::decode(&bytes),
            Err(ControlMessageError::BadClassId(9))
        );

        let mut q = ControlMessage::Query {
            key: a_key(),
            op: QueryOp::Read,
            offset: 0,
            size: 1,
        }
        .encode();
        q[23] = b'X';
        assert_eq!(
            ControlMessage::decode(&q),
            Err(ControlMessageError::BadQueryOp(b'X'))
        );
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary_fields(
            pid in 0x10000u64..u64::MAX,
            oid: u64,
            offset: u64,
            size: u64,
            class_id in 0u8..4,
            is_query: bool,
        ) {
            let key = ObjectKey::new(PartitionId::new(pid), ObjectId::new(oid));
            let msg = if is_query {
                ControlMessage::Query { key, op: QueryOp::Write, offset, size }
            } else {
                ControlMessage::SetClass {
                    key,
                    class: ObjectClass::from_id(class_id).unwrap(),
                }
            };
            prop_assert_eq!(ControlMessage::decode(&msg.encode()).unwrap(), msg);
        }

        #[test]
        fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = ControlMessage::decode(&bytes);
        }
    }
}
