#![warn(missing_docs)]
//! A T10-style Object Storage Device (OSD) model in user space.
//!
//! The Reo prototype was built on `open-osd`, the Linux implementation of
//! the T10 OSD-2 SCSI command set. That stack is obsolete, so this crate
//! reproduces the *interface semantics* Reo actually depends on:
//!
//! * [`PartitionId`] / [`ObjectId`] / [`ObjectKey`] — the two-level object
//!   namespace, including the reserved metadata objects that `exofs`
//!   defined (Super Block `0x10000`, Device Table `0x10001`, Root Directory
//!   `0x10002`) and the Reo control object (`0x10004`). See Table I of the
//!   paper.
//! * [`ObjectKind`] — Root / Partition / Collection / User object types.
//! * [`ObjectClass`] — the four semantic classes of Table II (system
//!   metadata, dirty, hot clean, cold clean) that drive differentiated
//!   redundancy.
//! * [`SenseCode`] — the command status codes of Table III.
//! * [`command::OsdCommand`] — the command set the cache manager issues.
//! * [`control`] — the `#SETID#` / `#QUERY#` control-message wire codec
//!   written to the special object `0x10004` (Section IV-C.2).
//!
//! # Examples
//!
//! ```
//! use reo_osd::{ObjectClass, ObjectKey, PartitionId, ObjectId};
//! use reo_osd::control::ControlMessage;
//!
//! let key = ObjectKey::user(PartitionId::FIRST, ObjectId::new(0x2_0000));
//! let msg = ControlMessage::SetClass { key, class: ObjectClass::HotClean };
//! let bytes = msg.encode();
//! assert_eq!(ControlMessage::decode(&bytes)?, msg);
//! # Ok::<(), reo_osd::control::ControlMessageError>(())
//! ```

pub mod attr;
mod class;
pub mod command;
pub mod control;
mod id;
mod sense;

pub use class::{ClassifierInputs, ObjectClass};
pub use id::{ObjectId, ObjectKey, ObjectKind, PartitionId};
pub use sense::SenseCode;
