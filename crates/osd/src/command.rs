//! The OSD command set the cache manager issues to the object storage.
//!
//! This models the subset of the T10 OSD-2 command set that the Reo
//! prototype exercises, plus the write-to-control-object path that carries
//! [`crate::control::ControlMessage`]s. Commands are plain data; the
//! `reo-osd-target` crate executes them.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{ObjectClass, ObjectKey, SenseCode};

/// A command addressed to the object storage device.
///
/// # Examples
///
/// ```
/// use reo_osd::command::OsdCommand;
/// use reo_osd::{ObjectKey, ObjectId, PartitionId};
///
/// let key = ObjectKey::user(PartitionId::FIRST, ObjectId::new(0x20000));
/// let cmd = OsdCommand::Read { key, offset: 0, length: 4096 };
/// assert!(cmd.is_read());
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OsdCommand {
    /// CREATE — create an object of `size` bytes with an initial class.
    Create {
        /// The object to create.
        key: ObjectKey,
        /// Logical size in bytes.
        size: u64,
        /// Initial semantic class.
        class: ObjectClass,
    },
    /// READ — read `length` bytes at `offset`.
    Read {
        /// The object to read.
        key: ObjectKey,
        /// Byte offset.
        offset: u64,
        /// Byte count.
        length: u64,
    },
    /// WRITE — overwrite `length` bytes at `offset`.
    Write {
        /// The object to write.
        key: ObjectKey,
        /// Byte offset.
        offset: u64,
        /// Byte count.
        length: u64,
    },
    /// REMOVE — delete the object and free its stripes.
    Remove {
        /// The object to remove.
        key: ObjectKey,
    },
    /// FLUSH — force the object durable (used for control-object writes,
    /// which the paper performs with `fsync` to bypass the buffer cache).
    Flush {
        /// The object to flush.
        key: ObjectKey,
    },
    /// SET CLASS — reclassify an object (the decoded `#SETID#` message).
    SetClass {
        /// The object to reclassify.
        key: ObjectKey,
        /// The new class.
        class: ObjectClass,
    },
    /// QUERY — ask for the status of an object (the decoded `#QUERY#`
    /// message). Returns a [`SenseCode`].
    Query {
        /// The object to query.
        key: ObjectKey,
    },
    /// LIST — enumerate the objects of a partition (collection support).
    List {
        /// Partition to enumerate (as the partition object's key).
        partition: ObjectKey,
    },
}

impl OsdCommand {
    /// The object the command addresses.
    pub fn key(&self) -> ObjectKey {
        match *self {
            OsdCommand::Create { key, .. }
            | OsdCommand::Read { key, .. }
            | OsdCommand::Write { key, .. }
            | OsdCommand::Remove { key }
            | OsdCommand::Flush { key }
            | OsdCommand::SetClass { key, .. }
            | OsdCommand::Query { key }
            | OsdCommand::List { partition: key } => key,
        }
    }

    /// `true` for commands that only read device state.
    pub fn is_read(&self) -> bool {
        matches!(
            self,
            OsdCommand::Read { .. } | OsdCommand::Query { .. } | OsdCommand::List { .. }
        )
    }

    /// `true` for commands that mutate device state.
    pub fn is_mutation(&self) -> bool {
        !self.is_read()
    }
}

impl fmt::Display for OsdCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsdCommand::Create { key, size, class } => {
                write!(f, "CREATE {key} size={size} class={class}")
            }
            OsdCommand::Read {
                key,
                offset,
                length,
            } => {
                write!(f, "READ {key} off={offset} len={length}")
            }
            OsdCommand::Write {
                key,
                offset,
                length,
            } => {
                write!(f, "WRITE {key} off={offset} len={length}")
            }
            OsdCommand::Remove { key } => write!(f, "REMOVE {key}"),
            OsdCommand::Flush { key } => write!(f, "FLUSH {key}"),
            OsdCommand::SetClass { key, class } => write!(f, "SETID {key} class={class}"),
            OsdCommand::Query { key } => write!(f, "QUERY {key}"),
            OsdCommand::List { partition } => write!(f, "LIST {partition}"),
        }
    }
}

/// The outcome of executing an [`OsdCommand`]: a sense code plus an
/// optional payload length (for reads).
///
/// # Examples
///
/// ```
/// use reo_osd::command::CommandStatus;
/// use reo_osd::SenseCode;
///
/// let ok = CommandStatus::success(4096);
/// assert_eq!(ok.sense(), SenseCode::Success);
/// assert_eq!(ok.bytes_transferred(), 4096);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommandStatus {
    sense: SenseCode,
    bytes_transferred: u64,
}

impl CommandStatus {
    /// A successful completion that moved `bytes` of payload.
    pub const fn success(bytes: u64) -> Self {
        CommandStatus {
            sense: SenseCode::Success,
            bytes_transferred: bytes,
        }
    }

    /// A completion with the given sense code and no payload.
    pub const fn of(sense: SenseCode) -> Self {
        CommandStatus {
            sense,
            bytes_transferred: 0,
        }
    }

    /// A completion that moved `bytes` of payload, but only after error
    /// recovery (a degraded read or retried transient fault): the data is
    /// good, and [`SenseCode::RecoveredError`] tells the initiator so.
    pub const fn recovered(bytes: u64) -> Self {
        CommandStatus {
            sense: SenseCode::RecoveredError,
            bytes_transferred: bytes,
        }
    }

    /// The sense code.
    pub const fn sense(self) -> SenseCode {
        self.sense
    }

    /// Payload bytes moved by the command.
    pub const fn bytes_transferred(self) -> u64 {
        self.bytes_transferred
    }

    /// `true` if the sense code is [`SenseCode::Success`].
    pub const fn is_success(self) -> bool {
        matches!(self.sense, SenseCode::Success)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ObjectId, PartitionId};

    fn key() -> ObjectKey {
        ObjectKey::user(PartitionId::FIRST, ObjectId::new(0x20000))
    }

    #[test]
    fn read_write_classification() {
        assert!(OsdCommand::Read {
            key: key(),
            offset: 0,
            length: 1
        }
        .is_read());
        assert!(OsdCommand::Query { key: key() }.is_read());
        assert!(OsdCommand::Write {
            key: key(),
            offset: 0,
            length: 1
        }
        .is_mutation());
        assert!(OsdCommand::Remove { key: key() }.is_mutation());
        assert!(OsdCommand::SetClass {
            key: key(),
            class: ObjectClass::Dirty
        }
        .is_mutation());
    }

    #[test]
    fn every_command_reports_its_key() {
        let k = key();
        let cmds = [
            OsdCommand::Create {
                key: k,
                size: 1,
                class: ObjectClass::ColdClean,
            },
            OsdCommand::Read {
                key: k,
                offset: 0,
                length: 1,
            },
            OsdCommand::Write {
                key: k,
                offset: 0,
                length: 1,
            },
            OsdCommand::Remove { key: k },
            OsdCommand::Flush { key: k },
            OsdCommand::SetClass {
                key: k,
                class: ObjectClass::HotClean,
            },
            OsdCommand::Query { key: k },
            OsdCommand::List { partition: k },
        ];
        for cmd in cmds {
            assert_eq!(cmd.key(), k, "{cmd}");
        }
    }

    #[test]
    fn status_accessors() {
        let s = CommandStatus::success(10);
        assert!(s.is_success());
        assert_eq!(s.bytes_transferred(), 10);
        let f = CommandStatus::of(SenseCode::Corrupted);
        assert!(!f.is_success());
        assert_eq!(f.sense(), SenseCode::Corrupted);
    }

    #[test]
    fn display_is_informative() {
        let cmd = OsdCommand::Read {
            key: key(),
            offset: 64,
            length: 128,
        };
        let s = cmd.to_string();
        assert!(s.contains("READ") && s.contains("off=64") && s.contains("len=128"));
    }
}
