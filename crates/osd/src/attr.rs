//! OSD attribute pages.
//!
//! T10 OSD-2 attaches typed attributes to every object, grouped into
//! numbered *pages*; commands can get/set attributes alongside data
//! operations. Reo rides on this machinery implicitly — the class label,
//! access statistics, and timestamps the cache manager reasons about are
//! object attributes. This module models the subset the system uses:
//!
//! * [`AttributePage`] — the standard page numbers (User Info, Timestamps,
//!   plus a vendor page for Reo's caching attributes).
//! * [`AttributeId`] — a `(page, number)` pair.
//! * [`AttributeValue`] — typed values (u64 / bytes / text).
//! * [`AttributeSet`] — the per-object attribute store with well-known
//!   helpers (logical length, access counts, class).

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ObjectClass;

/// Standard and vendor attribute pages.
///
/// Page numbers follow the OSD-2 convention of dedicating ranges to
/// standard pages and leaving a vendor-specific range; the exact values of
/// the vendor page are private to this implementation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AttributePage {
    /// User object information page (logical length, used capacity).
    UserInfo,
    /// Timestamps page (created / last accessed / last modified).
    Timestamps,
    /// Vendor page carrying Reo's caching attributes (class ID, access
    /// frequency, dirtiness).
    ReoCache,
}

impl AttributePage {
    /// The page's wire number.
    pub const fn number(self) -> u32 {
        match self {
            AttributePage::UserInfo => 0x1,
            AttributePage::Timestamps => 0x3,
            AttributePage::ReoCache => 0xFFFF_F001,
        }
    }
}

impl fmt::Display for AttributePage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttributePage::UserInfo => "user-info",
            AttributePage::Timestamps => "timestamps",
            AttributePage::ReoCache => "reo-cache",
        };
        f.write_str(s)
    }
}

/// A `(page, number)` attribute address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AttributeId {
    /// The page.
    pub page: AttributePage,
    /// The attribute number within the page.
    pub number: u32,
}

impl AttributeId {
    /// Logical length of the object (User Info page).
    pub const LOGICAL_LENGTH: AttributeId = AttributeId {
        page: AttributePage::UserInfo,
        number: 0x82,
    };
    /// Creation time (Timestamps page), nanoseconds of simulated time.
    pub const CREATED_AT: AttributeId = AttributeId {
        page: AttributePage::Timestamps,
        number: 0x1,
    };
    /// Last data access time (Timestamps page).
    pub const ACCESSED_AT: AttributeId = AttributeId {
        page: AttributePage::Timestamps,
        number: 0x2,
    };
    /// Reo: the object's class ID (0–3).
    pub const CLASS_ID: AttributeId = AttributeId {
        page: AttributePage::ReoCache,
        number: 0x1,
    };
    /// Reo: accesses since the object entered the cache (`Freq`).
    pub const ACCESS_FREQ: AttributeId = AttributeId {
        page: AttributePage::ReoCache,
        number: 0x2,
    };
    /// Reo: dirtiness flag (0 clean / 1 dirty).
    pub const DIRTY: AttributeId = AttributeId {
        page: AttributePage::ReoCache,
        number: 0x3,
    };
    /// Reo: replication content version. Stamped by the cluster layer's
    /// write fan-out on every replica copy; absent on copies that were
    /// never replicated. Anti-entropy compares this stamp against the
    /// cluster's authoritative version to detect diverged replicas.
    pub const REPLICA_VERSION: AttributeId = AttributeId {
        page: AttributePage::ReoCache,
        number: 0x4,
    };
}

impl fmt::Display for AttributeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{:#x}", self.page, self.number)
    }
}

/// A typed attribute value.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttributeValue {
    /// An unsigned integer (lengths, counters, timestamps, flags).
    U64(u64),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// UTF-8 text.
    Text(String),
}

impl AttributeValue {
    /// The value as a `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            AttributeValue::U64(v) => Some(*v),
            _ => None,
        }
    }
}

impl From<u64> for AttributeValue {
    fn from(v: u64) -> Self {
        AttributeValue::U64(v)
    }
}

impl From<&str> for AttributeValue {
    fn from(v: &str) -> Self {
        AttributeValue::Text(v.to_string())
    }
}

/// The attributes of one object.
///
/// # Examples
///
/// ```
/// use reo_osd::attr::{AttributeId, AttributeSet};
/// use reo_osd::ObjectClass;
///
/// let mut attrs = AttributeSet::new();
/// attrs.set(AttributeId::LOGICAL_LENGTH, 4096u64);
/// attrs.set_class(ObjectClass::HotClean);
/// assert_eq!(attrs.class(), Some(ObjectClass::HotClean));
/// assert_eq!(attrs.get(AttributeId::LOGICAL_LENGTH).and_then(|v| v.as_u64()), Some(4096));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AttributeSet {
    attrs: BTreeMap<AttributeId, AttributeValue>,
}

impl AttributeSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        AttributeSet::default()
    }

    /// Number of attributes present.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// `true` when no attributes are present.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Sets an attribute, returning the previous value if any.
    pub fn set(
        &mut self,
        id: AttributeId,
        value: impl Into<AttributeValue>,
    ) -> Option<AttributeValue> {
        self.attrs.insert(id, value.into())
    }

    /// Reads an attribute.
    pub fn get(&self, id: AttributeId) -> Option<&AttributeValue> {
        self.attrs.get(&id)
    }

    /// Removes an attribute, returning it if present.
    pub fn remove(&mut self, id: AttributeId) -> Option<AttributeValue> {
        self.attrs.remove(&id)
    }

    /// All attributes of one page, in number order.
    pub fn page(
        &self,
        page: AttributePage,
    ) -> impl Iterator<Item = (AttributeId, &AttributeValue)> {
        self.attrs
            .range(
                AttributeId { page, number: 0 }..=AttributeId {
                    page,
                    number: u32::MAX,
                },
            )
            .map(|(id, v)| (*id, v))
    }

    /// Convenience: stores the Reo class attribute.
    pub fn set_class(&mut self, class: ObjectClass) {
        self.set(AttributeId::CLASS_ID, class.id() as u64);
    }

    /// Convenience: reads the Reo class attribute.
    pub fn class(&self) -> Option<ObjectClass> {
        self.get(AttributeId::CLASS_ID)
            .and_then(AttributeValue::as_u64)
            .and_then(|v| u8::try_from(v).ok())
            .and_then(ObjectClass::from_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_remove_roundtrip() {
        let mut a = AttributeSet::new();
        assert!(a.is_empty());
        assert_eq!(a.set(AttributeId::ACCESS_FREQ, 1u64), None);
        assert_eq!(
            a.set(AttributeId::ACCESS_FREQ, 2u64),
            Some(AttributeValue::U64(1))
        );
        assert_eq!(
            a.get(AttributeId::ACCESS_FREQ).and_then(|v| v.as_u64()),
            Some(2)
        );
        assert_eq!(
            a.remove(AttributeId::ACCESS_FREQ),
            Some(AttributeValue::U64(2))
        );
        assert!(a.get(AttributeId::ACCESS_FREQ).is_none());
    }

    #[test]
    fn class_helpers_roundtrip_all_classes() {
        let mut a = AttributeSet::new();
        assert_eq!(a.class(), None);
        for class in ObjectClass::ALL {
            a.set_class(class);
            assert_eq!(a.class(), Some(class));
        }
        // Garbage class ids surface as None.
        a.set(AttributeId::CLASS_ID, 99u64);
        assert_eq!(a.class(), None);
    }

    #[test]
    fn page_iteration_is_scoped_and_ordered() {
        let mut a = AttributeSet::new();
        a.set(AttributeId::CLASS_ID, 1u64);
        a.set(AttributeId::DIRTY, 1u64);
        a.set(AttributeId::ACCESS_FREQ, 7u64);
        a.set(AttributeId::LOGICAL_LENGTH, 4096u64);
        let reo: Vec<u32> = a
            .page(AttributePage::ReoCache)
            .map(|(id, _)| id.number)
            .collect();
        assert_eq!(reo, vec![0x1, 0x2, 0x3]);
        let info: Vec<u32> = a
            .page(AttributePage::UserInfo)
            .map(|(id, _)| id.number)
            .collect();
        assert_eq!(info, vec![0x82]);
    }

    #[test]
    fn value_conversions() {
        assert_eq!(AttributeValue::from(5u64).as_u64(), Some(5));
        assert_eq!(AttributeValue::from("x"), AttributeValue::Text("x".into()));
        assert_eq!(AttributeValue::Bytes(vec![1]).as_u64(), None);
    }

    #[test]
    fn page_numbers_are_distinct() {
        let pages = [
            AttributePage::UserInfo,
            AttributePage::Timestamps,
            AttributePage::ReoCache,
        ];
        for (i, a) in pages.iter().enumerate() {
            for b in &pages[i + 1..] {
                assert_ne!(a.number(), b.number());
            }
        }
    }
}
