//! Scrub patrol: catching partial flash failures before they become
//! permanent.
//!
//! Whole-device failures are dramatic, but NAND mostly dies in small
//! pieces — a worn-out block here, an uncorrectable page there (the
//! paper's "partial data loss"). A degraded-but-recoverable object is a
//! ticking clock: one more fault and it is gone. The scrubber walks the
//! object index, verifies every chunk, and repairs recoverable damage in
//! place while the damage is still recoverable.
//!
//! Run with:
//!   cargo run --release --example scrub_patrol

use reo_repro::flashsim::{DeviceConfig, FlashArray};
use reo_repro::osd::{ObjectClass, ObjectId, ObjectKey, PartitionId};
use reo_repro::osd_target::{OsdTarget, ProtectionPolicy};
use reo_repro::sim::{ByteSize, SimClock};
use reo_repro::stripe::StripeManager;

fn key(i: u64) -> ObjectKey {
    ObjectKey::user(PartitionId::FIRST, ObjectId::new(0x20000 + i))
}

fn main() {
    let clock = SimClock::new();
    let array = FlashArray::new(5, DeviceConfig::intel_540s(), clock.clone());
    let stripes = StripeManager::new(array, ByteSize::from_kib(64));
    let mut target = OsdTarget::new(stripes, ProtectionPolicy::differentiated());
    target.format().expect("format");

    // A population of objects with real payloads across all classes.
    let mut payloads = Vec::new();
    for i in 0..12u64 {
        let class = match i % 3 {
            0 => ObjectClass::Dirty,
            1 => ObjectClass::HotClean,
            _ => ObjectClass::ColdClean,
        };
        let data: Vec<u8> = (0..300_000u32)
            .map(|j| (j.wrapping_mul(31).wrapping_add(i as u32) % 251) as u8)
            .collect();
        target
            .create_object(
                key(i),
                ByteSize::from_bytes(data.len() as u64),
                class,
                Some(&data),
            )
            .expect("create");
        payloads.push((key(i), class, data));
    }
    println!(
        "created {} objects (dirty / hot / cold mix)",
        payloads.len()
    );

    // Flash wear strikes: a handful of random-ish chunks rot away.
    for (i, (k, class, _)) in payloads.iter().enumerate() {
        if i % 2 == 0 {
            target.corrupt_chunk(*k, (i as u64) % 3).expect("inject");
            println!("  corrupted a chunk of {k} ({class})");
        }
    }

    // Patrol pass.
    let (repaired, lost) = target.scrub();
    println!(
        "\nscrub: {} repaired, {} beyond repair",
        repaired.len(),
        lost.len()
    );
    for k in &repaired {
        println!("  repaired {k}");
    }
    for k in &lost {
        println!("  LOST     {k}  (cold clean: no redundancy — next read refetches from backend)");
    }

    // Every surviving object still returns byte-exact contents.
    let mut verified = 0;
    for (k, _, data) in &payloads {
        if lost.contains(k) {
            continue;
        }
        let out = target.read_object(*k).expect("read");
        assert!(!out.degraded, "scrub must have healed {k}");
        assert_eq!(out.bytes.as_deref(), Some(&data[..]), "{k} corrupted");
        verified += 1;
    }
    println!("\n{verified} objects verified byte-exact after the patrol.");
    println!("Only unprotected cold-clean objects were lost — and those are");
    println!("clean by definition, so the backend still has them.");
}
