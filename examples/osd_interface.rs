//! The object storage interface, bottom-up: drive the OSD target directly
//! with real payloads — create objects, ship `#SETID#` classification
//! messages through the control mailbox, shoot a device down, and verify
//! byte-exact reconstruction.
//!
//! Run with:
//!   cargo run --release --example osd_interface

use reo_repro::flashsim::{DeviceConfig, DeviceId, FlashArray};
use reo_repro::osd::control::ControlMessage;
use reo_repro::osd::{ObjectClass, ObjectId, ObjectKey, PartitionId, SenseCode};
use reo_repro::osd_target::{OsdTarget, ProtectionPolicy};
use reo_repro::sim::{ByteSize, SimClock};
use reo_repro::stripe::StripeManager;

fn main() {
    // A 5-SSD array managed in 64 KiB chunks, under Reo's differentiated
    // policy.
    let clock = SimClock::new();
    let array = FlashArray::new(5, DeviceConfig::intel_540s(), clock.clone());
    let stripes = StripeManager::new(array, ByteSize::from_kib(64));
    let mut target = OsdTarget::new(stripes, ProtectionPolicy::differentiated());

    // Create a user object with a real payload (cold clean: class 3, no
    // redundancy).
    let key = ObjectKey::user(PartitionId::FIRST, ObjectId::new(0x2_0000));
    let payload: Vec<u8> = (0..1_000_000u32).map(|i| (i % 251) as u8).collect();
    target
        .create_object(
            key,
            ByteSize::from_bytes(payload.len() as u64),
            ObjectClass::ColdClean,
            Some(&payload),
        )
        .expect("create");
    println!("created {key} as {}", ObjectClass::ColdClean);

    // The cache manager decides it is hot and ships a classification
    // command to the mailbox object (OID 0x10004).
    let msg = ControlMessage::SetClass {
        key,
        class: ObjectClass::HotClean,
    };
    let sense = target.handle_control_write(&msg.encode()).expect("decode");
    println!(
        "#SETID# -> sense {} ({sense}); object re-encoded with 2 parity chunks",
        sense.as_i16()
    );
    assert_eq!(sense, SenseCode::Success);

    // Shootdown: device 1 dies. The object stays accessible via
    // reconstruction.
    target.fail_device(DeviceId(1));
    let q = target.query(key);
    println!("after shootdown of ssd1: query -> {} ({q})", q.as_i16());
    let degraded = target.read_object(key).expect("degraded read");
    assert!(degraded.degraded);
    assert_eq!(degraded.bytes.as_deref(), Some(&payload[..]));
    println!("degraded read returned all {} bytes intact", payload.len());

    // A spare arrives; prioritized recovery rebuilds the object.
    let lost = target.insert_spare(DeviceId(1));
    println!(
        "spare inserted: {} irrecoverable objects, {} rebuilds queued",
        lost.len(),
        target.recovery_pending()
    );
    while let Some(outcome) = target.recover_next() {
        println!("  recovery: {outcome:?}");
    }
    let healthy = target.read_object(key).expect("healthy read");
    assert!(!healthy.degraded);
    assert_eq!(healthy.bytes.as_deref(), Some(&payload[..]));
    println!(
        "object fully rebuilt; simulated time elapsed: {}",
        target.clock().now()
    );
}
