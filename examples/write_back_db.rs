//! Write-back database page cache: why dirty data needs differentiated
//! protection.
//!
//! A database fronts its table files with a write-back flash cache:
//! updates are absorbed in flash and flushed later. If the flash copy of
//! a dirty page is lost before the flush, the update is gone forever —
//! the failure mode the paper's Section VI-D targets. This example runs
//! a write-heavy workload and reports, per scheme, how many dirty objects
//! a double device failure destroys, and what each scheme paid in cache
//! hit ratio for its protection.
//!
//! Run with:
//!   cargo run --release --example write_back_db

use reo_repro::core::{CacheSystem, DeviceId, SchemeConfig, SystemConfig};
use reo_repro::workload::WorkloadSpec;

fn run(scheme: SchemeConfig, trace: &reo_repro::workload::Trace) -> (String, f64, f64, u64) {
    let cache_capacity = trace.summary().data_set_bytes.scale(0.10);
    let config = SystemConfig::paper_defaults(scheme, cache_capacity);
    let mut db_cache = CacheSystem::new(config);
    db_cache.populate(trace.objects());

    for request in trace.requests() {
        db_cache.handle(request);
    }
    let hit = db_cache.metrics().totals().hit_ratio_pct();
    let eff = 100.0 * db_cache.space_efficiency();

    // Two SSDs die before the dirty set is flushed.
    db_cache.fail_device(DeviceId(0));
    db_cache.fail_device(DeviceId(3));

    (scheme.label(), hit, eff, db_cache.dirty_data_lost())
}

fn main() {
    // 30% of requests are page updates.
    let trace = WorkloadSpec::write_intensive(0.30)
        .with_objects(400)
        .with_requests(6_000)
        .generate(99);
    println!(
        "write-back cache: {} objects, {:.1} GiB, {} writes / {} reads\n",
        trace.summary().objects,
        trace.summary().data_set_bytes.as_gib_f64(),
        trace.summary().writes,
        trace.summary().reads
    );

    println!(
        "{:<18}{:>12}{:>16}{:>24}",
        "scheme", "read hit %", "space eff %", "dirty lost @2 failures"
    );
    for scheme in [
        SchemeConfig::Parity(1),
        SchemeConfig::FullReplication,
        SchemeConfig::Reo { reserve: 0.10 },
    ] {
        let (label, hit, eff, lost) = run(scheme, &trace);
        println!("{label:<18}{hit:>12.1}{eff:>16.1}{lost:>24}");
    }

    println!("\n1-parity keeps a high hit ratio but loses dirty pages at the second");
    println!("failure; full replication protects them at a 20% space efficiency;");
    println!("Reo replicates only what is actually dirty and parity-protects the");
    println!("hot clean pages — no dirty loss, and most of the hit ratio.");
}
