//! Media CDN edge cache: the scenario the paper's workloads model.
//!
//! A streaming-media service (the MediSyn use case) fronts its origin
//! storage with a flash cache. Popularity is Zipfian and strongly skewed:
//! a small set of trending videos takes most of the traffic. This example
//! compares how much origin (backend) traffic each protection scheme
//! induces, and what a single SSD failure does to the origin load — the
//! "first line of defence" argument from the paper's introduction.
//!
//! Run with:
//!   cargo run --release --example media_cdn

use reo_repro::core::{CacheSystem, DeviceId, SchemeConfig, SystemConfig};
use reo_repro::sim::ByteSize;
use reo_repro::workload::{Locality, WorkloadSpec};

struct Outcome {
    label: String,
    hit_pct: f64,
    origin_gib: f64,
    origin_gib_after_failure: f64,
}

fn serve(scheme: SchemeConfig, trace: &reo_repro::workload::Trace) -> Outcome {
    let cache_capacity = trace.summary().data_set_bytes.scale(0.12);
    let config = SystemConfig::paper_defaults(scheme, cache_capacity);
    let mut cdn = CacheSystem::new(config);
    cdn.populate(trace.objects());

    // Warm, then measure a steady window.
    let half = trace.requests().len() / 2;
    for request in trace.requests() {
        cdn.handle(request);
    }
    let before = cdn.backend().stats().bytes_read;
    let now = cdn.clock().now();
    cdn.metrics_mut().reset_all(now);
    for request in trace.requests().iter().take(half) {
        cdn.handle(request);
    }
    let hit_pct = cdn.metrics().totals().hit_ratio_pct();
    let mid = cdn.backend().stats().bytes_read;

    // One SSD dies mid-stream: how much more origin traffic appears?
    cdn.fail_device(DeviceId(2));
    for request in trace.requests().iter().skip(half) {
        cdn.handle(request);
    }
    let after = cdn.backend().stats().bytes_read;

    Outcome {
        label: scheme.label(),
        hit_pct,
        origin_gib: ByteSize::from_bytes(mid - before).as_gib_f64(),
        origin_gib_after_failure: ByteSize::from_bytes(after - mid).as_gib_f64(),
    }
}

fn main() {
    // Strong locality: trending content dominates, like a video CDN.
    let trace = WorkloadSpec {
        write_ratio: 0.0,
        ..WorkloadSpec::strong()
    }
    .with_objects(600)
    .with_requests(8_000)
    .generate(2024);
    assert_eq!(trace.summary().writes, 0);
    println!(
        "CDN edge: {} videos, {:.1} GiB catalogue, locality = {}",
        trace.summary().objects,
        trace.summary().data_set_bytes.as_gib_f64(),
        Locality::Strong
    );
    println!("cache = 12% of catalogue, 5 flash devices\n");

    println!(
        "{:<18}{:>10}{:>22}{:>26}",
        "scheme", "hit %", "origin traffic (GiB)", "origin after SSD loss (GiB)"
    );
    for scheme in [
        SchemeConfig::Parity(0),
        SchemeConfig::Parity(1),
        SchemeConfig::Reo { reserve: 0.20 },
    ] {
        let o = serve(scheme, &trace);
        println!(
            "{:<18}{:>10.1}{:>22.2}{:>26.2}",
            o.label, o.hit_pct, o.origin_gib, o.origin_gib_after_failure
        );
    }

    println!("\n0-parity pushes the least origin traffic while healthy but floods the");
    println!("origin the moment a device dies; Reo gives up a little steady-state hit");
    println!("ratio to keep the origin protected through the failure.");
}
