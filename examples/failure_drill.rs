//! Failure drill: watch Reo degrade gracefully while a uniform-parity
//! cache collapses, then bring in a spare and observe prioritized
//! recovery.
//!
//! Run with:
//!   cargo run --release --example failure_drill

use reo_repro::core::{CacheSystem, DeviceId, SchemeConfig, SystemConfig};
use reo_repro::workload::WorkloadSpec;

fn measure_window(
    system: &mut CacheSystem,
    trace: &reo_repro::workload::Trace,
    n: usize,
    skip: usize,
) -> f64 {
    let now = system.clock().now();
    system.metrics_mut().roll_window(now);
    for request in trace.requests().iter().cycle().skip(skip).take(n) {
        system.handle(request);
    }
    system.metrics().window().hit_ratio_pct()
}

fn drill(label: &str, scheme: SchemeConfig, trace: &reo_repro::workload::Trace) {
    let cache_capacity = trace.summary().data_set_bytes.scale(0.15);
    let config = SystemConfig::paper_defaults(scheme, cache_capacity);
    let mut system = CacheSystem::new(config);
    system.populate(trace.objects());

    // Warm the cache.
    for request in trace.requests() {
        system.handle(request);
    }

    println!("\n=== {label} ===");
    let healthy = measure_window(&mut system, trace, 1_500, 0);
    println!("hit ratio, all devices healthy:   {healthy:.1}%");

    system.fail_device(DeviceId(0));
    let one_down = measure_window(&mut system, trace, 1_500, 1_500);
    println!(
        "hit ratio, 1 device failed:       {one_down:.1}%  (offline: {})",
        system.is_offline()
    );

    system.fail_device(DeviceId(1));
    let two_down = measure_window(&mut system, trace, 1_500, 3_000);
    println!(
        "hit ratio, 2 devices failed:      {two_down:.1}%  (offline: {})",
        system.is_offline()
    );

    // Spares arrive; Reo rebuilds the important objects first.
    system.insert_spare(DeviceId(0));
    system.insert_spare(DeviceId(1));
    println!(
        "spares inserted; rebuilds queued: {}",
        system.recovery_pending()
    );
    let recovered = measure_window(&mut system, trace, 1_500, 4_500);
    println!("hit ratio, after recovery window: {recovered:.1}%");
    println!(
        "dirty data permanently lost:      {}",
        system.dirty_data_lost()
    );
}

fn main() {
    let trace = WorkloadSpec::medium()
        .with_objects(400)
        .with_requests(5_000)
        .generate(11);

    println!(
        "workload: {} objects, {:.2} GiB; cache = 15% of data set",
        trace.summary().objects,
        trace.summary().data_set_bytes.as_gib_f64()
    );

    drill(
        "uniform 1-parity (baseline)",
        SchemeConfig::Parity(1),
        &trace,
    );
    drill(
        "Reo-20% (differentiated)",
        SchemeConfig::Reo { reserve: 0.20 },
        &trace,
    );

    println!("\nNote how 1-parity drops to zero at the second failure (the whole");
    println!("array is corrupted), while Reo keeps serving its protected objects");
    println!("and recovers the hot ones first once spares arrive.");
}
