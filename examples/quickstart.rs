//! Quickstart: build a Reo cache system, run a synthetic workload through
//! it, and read the metrics the paper reports.
//!
//! Run with:
//!   cargo run --release --example quickstart

use reo_repro::core::{CacheSystem, SchemeConfig, SystemConfig};
use reo_repro::workload::WorkloadSpec;

fn main() {
    // A scaled-down medium-locality workload (the paper's full data set is
    // 4,000 objects / ~17 GiB; this example uses 1/10 of that).
    let trace = WorkloadSpec::medium()
        .with_objects(400)
        .with_requests(5_000)
        .generate(7);
    let summary = trace.summary();
    println!(
        "workload: {} objects, {:.2} GiB data set, {} requests",
        summary.objects,
        summary.data_set_bytes.as_gib_f64(),
        summary.requests
    );

    // Reo with 20% of the flash space reserved for differentiated
    // redundancy; cache sized at 10% of the data set.
    let cache_capacity = summary.data_set_bytes.scale(0.10);
    let config = SystemConfig::paper_defaults(SchemeConfig::Reo { reserve: 0.20 }, cache_capacity);
    let mut system = CacheSystem::new(config);
    system.populate(trace.objects());

    for request in trace.requests() {
        system.handle(request);
    }

    let totals = system.metrics().totals();
    println!("\n--- results ---");
    println!("hit ratio:        {:.1}%", totals.hit_ratio_pct());
    println!(
        "bandwidth:        {:.0} MiB/s (simulated)",
        totals.bandwidth_mib_s()
    );
    println!("mean latency:     {:.1} ms", totals.mean_latency_ms());
    println!(
        "p99 latency:      {:.1} ms",
        totals.p99_latency.as_millis_f64()
    );
    println!(
        "space efficiency: {:.1}% (user bytes / occupied flash)",
        100.0 * system.space_efficiency()
    );
    println!("objects cached:   {}", system.cached_objects());
}
