//! Workspace umbrella crate for the Reo reproduction.
//!
//! This crate exists so that the repository-level `tests/` and `examples/`
//! directories can span every crate in the workspace. It only re-exports the
//! member crates under stable names; all functionality lives in the members.

pub use reo_backend as backend;
pub use reo_cache as cache;
pub use reo_core as core;
pub use reo_erasure as erasure;
pub use reo_flashsim as flashsim;
pub use reo_journal as journal;
pub use reo_osd as osd;
pub use reo_osd_target as osd_target;
pub use reo_placement as placement;
pub use reo_sim as sim;
pub use reo_stripe as stripe;
pub use reo_workload as workload;
