//! Integration tests of the OSD stack below the cache system: control
//! messages over the wire, payload integrity through failures and
//! recovery, and policy interactions across crates.

use reo_repro::flashsim::{DeviceConfig, DeviceId, FlashArray};
use reo_repro::osd::command::OsdCommand;
use reo_repro::osd::control::{ControlMessage, QueryOp};
use reo_repro::osd::{ObjectClass, ObjectId, ObjectKey, PartitionId, SenseCode};
use reo_repro::osd_target::{OsdTarget, ProtectionPolicy};
use reo_repro::sim::{ByteSize, ServiceModel, SimClock, SimDuration};
use reo_repro::stripe::{RedundancyScheme, StripeManager};

fn key(i: u64) -> ObjectKey {
    ObjectKey::user(PartitionId::FIRST, ObjectId::new(0x20000 + i))
}

fn target(devices: usize, capacity_mib: u64, policy: ProtectionPolicy) -> OsdTarget {
    let cfg = DeviceConfig {
        capacity: ByteSize::from_mib(capacity_mib),
        read: ServiceModel::new(SimDuration::from_micros(90), 520 * 1024 * 1024),
        write: ServiceModel::new(SimDuration::from_micros(220), 470 * 1024 * 1024),
        erase_block: ByteSize::from_kib(256),
        pe_cycle_limit: 3000,
    };
    let array = FlashArray::new(devices, cfg, SimClock::new());
    OsdTarget::new(StripeManager::new(array, ByteSize::from_kib(16)), policy)
}

fn payload(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
        .collect()
}

#[test]
fn payload_survives_every_single_device_failure() {
    // A hot (2-parity) object must reconstruct byte-exactly no matter
    // which single device dies.
    for victim in 0..5 {
        let mut t = target(5, 64, ProtectionPolicy::differentiated());
        let data = payload(200_000, victim as u8);
        t.create_object(
            key(1),
            ByteSize::from_bytes(data.len() as u64),
            ObjectClass::HotClean,
            Some(&data),
        )
        .unwrap();
        t.fail_device(DeviceId(victim));
        let out = t.read_object(key(1)).unwrap();
        assert_eq!(out.bytes.as_deref(), Some(&data[..]), "victim {victim}");
        assert!(out.degraded);
    }
}

#[test]
fn payload_survives_every_double_device_failure() {
    for a in 0..5 {
        for b in (a + 1)..5 {
            let mut t = target(5, 64, ProtectionPolicy::differentiated());
            let data = payload(120_000, (a * 5 + b) as u8);
            t.create_object(
                key(1),
                ByteSize::from_bytes(data.len() as u64),
                ObjectClass::HotClean,
                Some(&data),
            )
            .unwrap();
            t.fail_device(DeviceId(a));
            t.fail_device(DeviceId(b));
            let out = t.read_object(key(1)).unwrap();
            assert_eq!(out.bytes.as_deref(), Some(&data[..]), "victims {a},{b}");
        }
    }
}

#[test]
fn replicated_payload_survives_quadruple_failure_and_rebuilds() {
    let mut t = target(5, 64, ProtectionPolicy::differentiated());
    let data = payload(80_000, 9);
    t.create_object(
        key(1),
        ByteSize::from_bytes(data.len() as u64),
        ObjectClass::Dirty,
        Some(&data),
    )
    .unwrap();
    for d in 0..4 {
        t.fail_device(DeviceId(d));
    }
    assert_eq!(
        t.read_object(key(1)).unwrap().bytes.as_deref(),
        Some(&data[..])
    );
    // Spares restore full replication, one device at a time.
    for d in 0..4 {
        t.insert_spare(DeviceId(d));
        while t.recover_next().is_some() {}
    }
    let out = t.read_object(key(1)).unwrap();
    assert!(!out.degraded);
    assert_eq!(out.bytes.as_deref(), Some(&data[..]));
}

#[test]
fn control_wire_format_drives_reencoding_end_to_end() {
    let mut t = target(5, 64, ProtectionPolicy::differentiated());
    let data = payload(150_000, 3);
    t.create_object(
        key(7),
        ByteSize::from_bytes(data.len() as u64),
        ObjectClass::ColdClean,
        Some(&data),
    )
    .unwrap();

    // Promote via raw wire bytes, exactly as the initiator would write
    // them to OID 0x10004.
    let wire = ControlMessage::SetClass {
        key: key(7),
        class: ObjectClass::HotClean,
    }
    .encode();
    assert_eq!(t.handle_control_write(&wire).unwrap(), SenseCode::Success);

    // Query through the wire too.
    let q = ControlMessage::Query {
        key: key(7),
        op: QueryOp::Read,
        offset: 0,
        size: data.len() as u64,
    }
    .encode();
    assert_eq!(t.handle_control_write(&q).unwrap(), SenseCode::Success);

    // The promotion is real: two failures are now survivable.
    t.fail_device(DeviceId(0));
    t.fail_device(DeviceId(1));
    assert_eq!(
        t.read_object(key(7)).unwrap().bytes.as_deref(),
        Some(&data[..])
    );
}

#[test]
fn command_interface_covers_the_lifecycle() {
    let mut t = target(
        5,
        64,
        ProtectionPolicy::uniform(RedundancyScheme::parity(1)),
    );
    let create = OsdCommand::Create {
        key: key(1),
        size: 100_000,
        class: ObjectClass::ColdClean,
    };
    assert!(t.execute(&create).is_success());
    let read = OsdCommand::Read {
        key: key(1),
        offset: 0,
        length: 100_000,
    };
    assert!(t.execute(&read).is_success());
    let query = OsdCommand::Query { key: key(1) };
    assert_eq!(t.execute(&query).sense(), SenseCode::Success);
    let remove = OsdCommand::Remove { key: key(1) };
    assert!(t.execute(&remove).is_success());
    assert_eq!(t.execute(&read).sense(), SenseCode::Failure);
}

#[test]
fn recovery_sense_codes_follow_the_protocol() {
    let mut t = target(5, 64, ProtectionPolicy::differentiated());
    t.create_object(key(1), ByteSize::from_kib(100), ObjectClass::HotClean, None)
        .unwrap();
    assert_eq!(t.recovery_sense(), SenseCode::Success);
    t.fail_device(DeviceId(0));
    t.insert_spare(DeviceId(0));
    assert_eq!(t.recovery_sense(), SenseCode::RecoveryStarts);
    while t.recover_next().is_some() {}
    assert_eq!(t.recovery_sense(), SenseCode::RecoveryEnds);
    assert_eq!(t.recovery_sense(), SenseCode::Success);
}

#[test]
fn clamped_redundancy_still_protects_on_shrunken_arrays() {
    // Three of five devices down: hot objects can only get 1 parity, but
    // they must still survive the loss of one of the two survivors...
    let mut t = target(5, 64, ProtectionPolicy::differentiated());
    t.fail_device(DeviceId(0));
    t.fail_device(DeviceId(1));
    t.fail_device(DeviceId(2));
    let data = payload(60_000, 1);
    t.create_object(
        key(1),
        ByteSize::from_bytes(data.len() as u64),
        ObjectClass::HotClean,
        Some(&data),
    )
    .unwrap();
    t.fail_device(DeviceId(3));
    let out = t.read_object(key(1)).unwrap();
    assert_eq!(out.bytes.as_deref(), Some(&data[..]));
}

#[test]
fn usage_amplification_visible_through_target() {
    let mut repl = target(
        5,
        64,
        ProtectionPolicy::uniform(RedundancyScheme::Replication),
    );
    let mut plain = target(
        5,
        64,
        ProtectionPolicy::uniform(RedundancyScheme::parity(0)),
    );
    for i in 0..10 {
        repl.create_object(key(i), ByteSize::from_kib(64), ObjectClass::ColdClean, None)
            .unwrap();
        plain
            .create_object(key(i), ByteSize::from_kib(64), ObjectClass::ColdClean, None)
            .unwrap();
    }
    assert_eq!(
        repl.usage().total().as_bytes(),
        5 * plain.usage().total().as_bytes()
    );
    assert_eq!(plain.usage().space_efficiency(), 1.0);
    assert!((repl.usage().space_efficiency() - 0.2).abs() < 1e-12);
}
