//! Control-plane integration tests: the mailbox protocol and the sense
//! codes of Table III, exercised through whole failure/recovery cycles.

use reo_repro::flashsim::{DeviceConfig, DeviceId, FlashArray};
use reo_repro::osd::control::{ControlMessage, QueryOp};
use reo_repro::osd::{ObjectClass, ObjectId, ObjectKey, PartitionId, SenseCode};
use reo_repro::osd_target::{OsdTarget, ProtectionPolicy};
use reo_repro::sim::{ByteSize, ServiceModel, SimClock, SimDuration};
use reo_repro::stripe::StripeManager;

fn key(i: u64) -> ObjectKey {
    ObjectKey::user(PartitionId::FIRST, ObjectId::new(0x20000 + i))
}

fn target() -> OsdTarget {
    let cfg = DeviceConfig {
        capacity: ByteSize::from_mib(64),
        read: ServiceModel::new(SimDuration::from_micros(90), 520 * 1024 * 1024),
        write: ServiceModel::new(SimDuration::from_micros(220), 470 * 1024 * 1024),
        erase_block: ByteSize::from_kib(256),
        pe_cycle_limit: 3000,
    };
    let array = FlashArray::new(5, cfg, SimClock::new());
    let mut t = OsdTarget::new(
        StripeManager::new(array, ByteSize::from_kib(16)),
        ProtectionPolicy::differentiated(),
    );
    t.format().expect("format");
    t
}

fn query(t: &mut OsdTarget, k: ObjectKey) -> SenseCode {
    let wire = ControlMessage::Query {
        key: k,
        op: QueryOp::Read,
        offset: 0,
        size: 1,
    }
    .encode();
    t.handle_control_write(&wire).expect("well-formed query")
}

/// The exact sense-code narrative the paper describes in §VI-C: 0x00 for
/// accessible objects, 0x63 for corrupted-and-irrecoverable, 0x65 while
/// recovery runs, 0x66 when it ends.
#[test]
fn sense_code_narrative_through_a_failure() {
    let mut t = target();
    // Large enough that every stripe set spans all five devices.
    t.create_object(key(1), ByteSize::from_kib(160), ObjectClass::HotClean, None)
        .unwrap();
    t.create_object(
        key(2),
        ByteSize::from_kib(160),
        ObjectClass::ColdClean,
        None,
    )
    .unwrap();

    // Healthy: everything accessible.
    assert_eq!(query(&mut t, key(1)), SenseCode::Success);
    assert_eq!(query(&mut t, key(2)), SenseCode::Success);
    assert_eq!(t.recovery_sense(), SenseCode::Success);

    // Shootdown: hot stays accessible (reconstructable), cold is 0x63.
    t.fail_device(DeviceId(1));
    assert_eq!(query(&mut t, key(1)), SenseCode::Success);
    assert_eq!(query(&mut t, key(2)), SenseCode::Corrupted);

    // Spare inserted: 0x65 while the queue drains, 0x66 once, then 0x00.
    let lost = t.insert_spare(DeviceId(1));
    assert_eq!(lost, vec![key(2)]);
    assert_eq!(t.recovery_sense(), SenseCode::RecoveryStarts);
    while t.recover_next().is_some() {}
    assert_eq!(t.recovery_sense(), SenseCode::RecoveryEnds);
    assert_eq!(t.recovery_sense(), SenseCode::Success);
    assert_eq!(query(&mut t, key(1)), SenseCode::Success);
}

/// Classification commands round-trip through raw mailbox bytes for all
/// four classes, and drive real redundancy changes.
#[test]
fn setid_wire_commands_change_protection() {
    let mut t = target();
    t.create_object(key(1), ByteSize::from_kib(64), ObjectClass::ColdClean, None)
        .unwrap();

    for class in [
        ObjectClass::HotClean,
        ObjectClass::Dirty,
        ObjectClass::Metadata,
        ObjectClass::ColdClean,
    ] {
        let wire = ControlMessage::SetClass { key: key(1), class }.encode();
        assert_eq!(
            t.handle_control_write(&wire).unwrap(),
            SenseCode::Success,
            "{class}"
        );
        assert_eq!(t.class_of(key(1)), Some(class));
    }

    // Back to cold: a single failure hitting its chunks loses it again.
    t.fail_device(DeviceId(0));
    assert_eq!(query(&mut t, key(1)), SenseCode::Corrupted);
}

/// Mailbox commands addressed at unknown objects report failure (−1),
/// matching Table III's "the command is unsuccessful".
#[test]
fn unknown_objects_report_failure() {
    let mut t = target();
    assert_eq!(query(&mut t, key(404)), SenseCode::Failure);
    let wire = ControlMessage::SetClass {
        key: key(404),
        class: ObjectClass::HotClean,
    }
    .encode();
    assert_eq!(t.handle_control_write(&wire).unwrap(), SenseCode::Failure);
}

/// Garbage written to the mailbox is rejected without panicking and
/// without disturbing object state.
#[test]
fn malformed_mailbox_writes_are_rejected() {
    let mut t = target();
    t.create_object(key(1), ByteSize::from_kib(16), ObjectClass::HotClean, None)
        .unwrap();
    for garbage in [
        &b""[..],
        &b"#"[..],
        &b"#SETID#short"[..],
        &b"#NOPE!#aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"[..],
    ] {
        assert!(t.handle_control_write(garbage).is_err());
    }
    // A SETID with trailing bytes is also rejected.
    let mut wire = ControlMessage::SetClass {
        key: key(1),
        class: ObjectClass::ColdClean,
    }
    .encode();
    wire.push(0xff);
    assert!(t.handle_control_write(&wire).is_err());
    // State untouched.
    assert_eq!(t.class_of(key(1)), Some(ObjectClass::HotClean));
}

/// The cache-full condition (0x64) surfaces through CREATE and clears
/// after evictions, exactly as the initiator's replacement loop expects.
#[test]
fn cache_full_protocol_drives_replacement() {
    let cfg = DeviceConfig {
        capacity: ByteSize::from_kib(512),
        read: ServiceModel::new(SimDuration::from_micros(90), 520 * 1024 * 1024),
        write: ServiceModel::new(SimDuration::from_micros(220), 470 * 1024 * 1024),
        erase_block: ByteSize::from_kib(128),
        pe_cycle_limit: 3000,
    };
    let array = FlashArray::new(5, cfg, SimClock::new());
    let mut t = OsdTarget::new(
        StripeManager::new(array, ByteSize::from_kib(16)),
        ProtectionPolicy::differentiated(),
    );

    // Fill the cache with cold objects until CREATE reports 0x64.
    let mut created = Vec::new();
    let mut full_seen = false;
    for i in 0..100u64 {
        match t.create_object(
            key(i),
            ByteSize::from_kib(128),
            ObjectClass::ColdClean,
            None,
        ) {
            Ok(_) => created.push(key(i)),
            Err(e) => {
                assert_eq!(e.sense(), SenseCode::CacheFull);
                full_seen = true;
                break;
            }
        }
    }
    assert!(full_seen, "the array must eventually fill");
    assert!(!created.is_empty());

    // Replacement: evict one object, and the same CREATE now succeeds.
    t.remove_object(created[0]).unwrap();
    t.create_object(
        key(999),
        ByteSize::from_kib(128),
        ObjectClass::ColdClean,
        None,
    )
    .expect("space was freed");
}
