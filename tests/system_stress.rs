//! Long-running system-level stress: random failures and spares woven
//! through a live workload, with invariants checked continuously.

use reo_repro::core::{CacheSystem, DeviceId, SchemeConfig, SystemConfig};
use reo_repro::sim::rng::DetRng;
use reo_repro::sim::ByteSize;
use reo_repro::workload::{Locality, Trace, WorkloadSpec};

fn trace(seed: u64) -> Trace {
    WorkloadSpec {
        objects: 200,
        mean_object_size: ByteSize::from_kib(192),
        size_sigma: 0.8,
        locality: Locality::Medium,
        requests: 4_000,
        write_ratio: 0.25,
        temporal_reuse: 0.4,
        reuse_window: 150,
    }
    .generate(seed)
}

fn stress(scheme: SchemeConfig, seed: u64) {
    let t = trace(seed);
    let cache = t.summary().data_set_bytes.scale(0.12);
    let config =
        SystemConfig::paper_defaults(scheme, cache).with_chunk_size(ByteSize::from_kib(32));
    let mut sys = CacheSystem::new(config);
    sys.populate(t.objects());

    let mut rng = DetRng::from_seed(seed ^ 0xdead_beef);
    let mut failed = [false; 5];
    let mut last_time = sys.clock().now();

    for (i, r) in t.requests().iter().enumerate() {
        // Random chaos: occasionally fail a healthy device or insert a
        // spare for a failed one (keeping at least one device alive).
        if i % 97 == 96 {
            let d = rng.below(5) as usize;
            if failed[d] {
                sys.insert_spare(DeviceId(d));
                failed[d] = false;
            } else if failed.iter().filter(|&&f| f).count() < 4 && rng.chance(0.5) {
                sys.fail_device(DeviceId(d));
                failed[d] = true;
            }
        }
        sys.handle(r);

        // Invariants after every request.
        let now = sys.clock().now();
        assert!(now >= last_time, "time went backwards at request {i}");
        last_time = now;
        let totals = sys.metrics().totals();
        assert_eq!(totals.requests, (i + 1) as u64, "metrics lost a request");
        assert!(totals.read_hits <= totals.reads);
        let eff = sys.space_efficiency();
        assert!((0.0..=1.0).contains(&eff), "eff {eff} at request {i}");
    }

    // Under Reo, no dirty data may ever be permanently lost while at
    // least one device survived (which the chaos loop guarantees).
    if scheme.is_differentiated() {
        assert_eq!(
            sys.dirty_data_lost(),
            0,
            "{} lost dirty data despite replication",
            scheme.label()
        );
    }
    // The system is still serviceable at the end.
    let before = sys.metrics().totals().requests;
    for r in t.requests().iter().take(50) {
        sys.handle(r);
    }
    assert_eq!(sys.metrics().totals().requests, before + 50);
}

#[test]
fn chaos_reo_survives_and_keeps_dirty_data() {
    for seed in [1u64, 7, 23] {
        stress(SchemeConfig::Reo { reserve: 0.20 }, seed);
    }
}

#[test]
fn chaos_uniform_parity_stays_consistent() {
    // Uniform schemes may go offline (and lose dirty data) — the invariant
    // checked here is bookkeeping consistency, not survival.
    for seed in [3u64, 11] {
        stress(SchemeConfig::Parity(1), seed);
    }
}

#[test]
fn chaos_full_replication_never_loses_dirty_data_until_total_loss() {
    // Full replication survives anything short of all five devices, which
    // the chaos loop never does.
    let t = trace(5);
    let cache = t.summary().data_set_bytes.scale(0.12);
    let config = SystemConfig::paper_defaults(SchemeConfig::FullReplication, cache)
        .with_chunk_size(ByteSize::from_kib(32));
    let mut sys = CacheSystem::new(config);
    sys.populate(t.objects());
    for (i, r) in t.requests().iter().enumerate() {
        if i == 1_000 {
            sys.fail_device(DeviceId(0));
        }
        if i == 2_000 {
            sys.fail_device(DeviceId(3));
        }
        sys.handle(r);
    }
    assert_eq!(sys.dirty_data_lost(), 0);
    assert!(!sys.is_offline(), "replication tolerates n-1 failures");
}
