//! Workspace-spanning integration tests: the full request path from
//! workload generation through the cache manager, OSD target, stripe
//! manager, flash array, and backend.

use reo_repro::core::{
    CacheSystem, DeviceId, ExperimentPlan, ExperimentRunner, SchemeConfig, SystemConfig,
};
use reo_repro::sim::ByteSize;
use reo_repro::workload::{Locality, Operation, Request, Trace, WorkloadSpec};

fn trace(requests: usize, write_ratio: f64, seed: u64) -> Trace {
    WorkloadSpec {
        objects: 150,
        mean_object_size: ByteSize::from_kib(256),
        size_sigma: 0.6,
        locality: Locality::Medium,
        requests,
        write_ratio,
        temporal_reuse: Locality::Medium.temporal_reuse(),
        reuse_window: 100,
    }
    .generate(seed)
}

fn system(scheme: SchemeConfig, t: &Trace, frac: f64) -> CacheSystem {
    let cache = t.summary().data_set_bytes.scale(frac);
    let config =
        SystemConfig::paper_defaults(scheme, cache).with_chunk_size(ByteSize::from_kib(32));
    let mut sys = CacheSystem::new(config);
    sys.populate(t.objects());
    sys
}

#[test]
fn all_six_schemes_run_the_same_trace() {
    let t = trace(1_000, 0.0, 1);
    for scheme in SchemeConfig::normal_run_set() {
        let mut sys = system(scheme, &t, 0.15);
        let result = ExperimentRunner::run(&mut sys, &t, &ExperimentPlan::normal_run());
        assert_eq!(result.totals.requests, 1_000, "{}", scheme.label());
        assert!(result.totals.hit_ratio_pct() > 0.0, "{}", scheme.label());
        assert!(result.totals.bandwidth_mib_s() > 0.0, "{}", scheme.label());
    }
}

#[test]
fn runs_are_deterministic_across_repetitions() {
    let t = trace(800, 0.2, 7);
    let run = || {
        let mut sys = system(SchemeConfig::Reo { reserve: 0.20 }, &t, 0.12);
        let plan = ExperimentPlan::staggered_failures(200, 2);
        let result = ExperimentRunner::run(&mut sys, &t, &plan);
        (
            result.totals.read_hits,
            result.totals.requested_bytes,
            result.totals.elapsed,
            result.events[1].window_before.read_hits,
            result.space_efficiency.to_bits(),
        )
    };
    assert_eq!(
        run(),
        run(),
        "same seed and plan must give identical metrics"
    );
}

#[test]
fn parallel_sweep_matches_serial_cell_for_cell() {
    use reo_repro::core::parallel_map_ordered;

    // The sweep pool must be invisible in the results: every cell's
    // metrics identical to the serial loop, in the serial loop's order.
    let t = trace(600, 0.1, 11);
    let cells = [0.08, 0.12, 0.16];
    let run_cell = |_: usize, &frac: &f64| {
        let mut sys = system(SchemeConfig::Reo { reserve: 0.20 }, &t, frac);
        let result = ExperimentRunner::run(&mut sys, &t, &ExperimentPlan::normal_run());
        (
            result.totals.read_hits,
            result.totals.requested_bytes,
            result.totals.elapsed,
            result.space_efficiency.to_bits(),
        )
    };
    let serial = parallel_map_ordered(&cells, 1, run_cell);
    for threads in [2, 8] {
        assert_eq!(
            parallel_map_ordered(&cells, threads, run_cell),
            serial,
            "threads={threads}"
        );
    }
}

#[test]
fn space_efficiency_anchors_match_the_paper() {
    // Section VI-B: 0-parity 100%, 1-parity 80%, 2-parity 60%,
    // full replication 20% on a five-device array.
    let t = trace(600, 0.0, 3);
    let cases = [
        (SchemeConfig::Parity(0), 1.00, 0.002),
        (SchemeConfig::Parity(1), 0.78, 0.04),
        (SchemeConfig::Parity(2), 0.585, 0.05),
        (SchemeConfig::FullReplication, 0.20, 0.01),
    ];
    for (scheme, expected, tol) in cases {
        let mut sys = system(scheme, &t, 0.15);
        for r in t.requests() {
            sys.handle(r);
        }
        let eff = sys.space_efficiency();
        assert!(
            (eff - expected).abs() <= tol,
            "{}: eff {eff} vs expected {expected}",
            scheme.label()
        );
    }
}

#[test]
fn uniform_caches_die_at_parity_plus_one_failures() {
    let t = trace(1_200, 0.0, 4);
    for (scheme, deadly) in [
        (SchemeConfig::Parity(0), 1usize),
        (SchemeConfig::Parity(1), 2),
        (SchemeConfig::Parity(2), 3),
    ] {
        let mut sys = system(scheme, &t, 0.15);
        for r in t.requests() {
            sys.handle(r);
        }
        for d in 0..deadly - 1 {
            sys.fail_device(DeviceId(d));
            assert!(
                !sys.is_offline(),
                "{} at {} failures",
                scheme.label(),
                d + 1
            );
        }
        sys.fail_device(DeviceId(deadly - 1));
        assert!(
            sys.is_offline(),
            "{} must be offline at {deadly} failures",
            scheme.label()
        );
    }
}

#[test]
fn reo_survives_to_the_last_device() {
    let t = trace(1_200, 0.1, 5);
    let mut sys = system(SchemeConfig::Reo { reserve: 0.20 }, &t, 0.15);
    for r in t.requests() {
        sys.handle(r);
    }
    for d in 0..4 {
        sys.fail_device(DeviceId(d));
        assert!(!sys.is_offline());
    }
    // Still serving with one device: run more requests, dirty data intact.
    let now = sys.clock().now();
    sys.metrics_mut().reset_all(now);
    for r in t.requests().iter().take(300) {
        sys.handle(r);
    }
    assert_eq!(
        sys.dirty_data_lost(),
        0,
        "replicated dirty data must survive"
    );
    assert_eq!(sys.metrics().totals().requests, 300);
}

#[test]
fn write_back_preserves_every_update() {
    let t = trace(1_500, 0.4, 6);
    let mut sys = system(SchemeConfig::Reo { reserve: 0.10 }, &t, 0.08);
    for r in t.requests() {
        sys.handle(r);
    }
    // Every write either sits dirty in cache (replicated) or has been
    // flushed to the backend. Summing flushes and cached-dirty objects
    // must cover all written objects.
    let backend_writes = sys.backend().stats().writes;
    assert!(
        backend_writes > 0,
        "small cache must have flushed on eviction"
    );
    assert_eq!(sys.dirty_data_lost(), 0);
    // Versions in the backend only move forward.
    for o in t.objects() {
        assert!(sys.backend().version_of(o.key).is_some());
    }
}

#[test]
fn degraded_operation_costs_show_up_in_latency() {
    let t = trace(1_000, 0.0, 8);
    let mut sys = system(SchemeConfig::Parity(2), &t, 0.30);
    for r in t.requests() {
        sys.handle(r);
    }
    // Healthy window: replay the tail of the trace (recently-touched
    // objects, so they are cached).
    let tail = &t.requests()[t.requests().len() - 200..];
    let now = sys.clock().now();
    sys.metrics_mut().reset_all(now);
    for r in tail {
        sys.handle(r);
    }
    let now = sys.clock().now();
    let healthy = sys.metrics_mut().roll_window(now);
    assert!(healthy.read_hits > 0, "tail replay must hit");

    // Fail a device and replay the very same requests: surviving cached
    // objects are now served through reconstruction.
    sys.fail_device(DeviceId(0));
    for r in tail {
        sys.handle(r);
    }
    let degraded = sys.metrics().window();
    assert!(
        degraded.degraded_reads > 0,
        "reconstruction must have happened"
    );
    assert!(
        degraded.mean_latency >= healthy.mean_latency,
        "degraded {} < healthy {}",
        degraded.mean_latency,
        healthy.mean_latency
    );
}

#[test]
fn recovery_drains_and_restores_service() {
    let t = trace(2_000, 0.0, 9);
    let mut sys = system(SchemeConfig::Reo { reserve: 0.40 }, &t, 0.15);
    for r in t.requests() {
        sys.handle(r);
    }
    sys.fail_device(DeviceId(2));
    sys.insert_spare(DeviceId(2));
    let queued = sys.recovery_pending();
    assert!(queued > 0, "protected objects must be queued for rebuild");
    for r in t.requests() {
        sys.handle(r);
        if sys.recovery_pending() == 0 {
            break;
        }
    }
    assert_eq!(sys.recovery_pending(), 0, "recovery must drain");
}

#[test]
fn mixed_read_write_request_stream_stays_consistent() {
    let t = trace(2_500, 0.3, 10);
    let mut sys = system(SchemeConfig::Reo { reserve: 0.20 }, &t, 0.10);
    let mut reads = 0u64;
    let mut writes = 0u64;
    for r in t.requests() {
        let outcome = sys.handle(r);
        match r.op {
            Operation::Read => reads += 1,
            Operation::Write => {
                writes += 1;
                assert!(!outcome.hit, "writes are absorbed, never counted as hits");
            }
        }
    }
    let totals = sys.metrics().totals();
    assert_eq!(totals.reads, reads);
    assert_eq!(totals.writes, writes);
    assert_eq!(totals.requests, reads + writes);
}

#[test]
fn request_outcome_latency_matches_metrics() {
    let t = trace(50, 0.0, 11);
    let mut sys = system(SchemeConfig::Parity(1), &t, 0.5);
    let r: &Request = &t.requests()[0];
    let miss = sys.handle(r);
    let hit = sys.handle(r);
    assert!(!miss.hit && hit.hit);
    assert!(miss.latency > hit.latency);
    assert_eq!(sys.metrics().totals().requests, 2);
    assert_eq!(sys.metrics().totals().read_hits, 1);
}
