//! Exhaustive failure matrices: every class × every failure pattern, with
//! real payloads, through the full OSD stack.

use reo_repro::flashsim::{DeviceConfig, DeviceId, FlashArray};
use reo_repro::osd::{ObjectClass, ObjectId, ObjectKey, PartitionId};
use reo_repro::osd_target::{OsdTarget, ProtectionPolicy};
use reo_repro::sim::{ByteSize, ServiceModel, SimClock, SimDuration};
use reo_repro::stripe::{ObjectStatus, StripeManager};

fn key(i: u64) -> ObjectKey {
    ObjectKey::user(PartitionId::FIRST, ObjectId::new(0x20000 + i))
}

fn target() -> OsdTarget {
    let cfg = DeviceConfig {
        capacity: ByteSize::from_mib(128),
        read: ServiceModel::new(SimDuration::from_micros(90), 520 * 1024 * 1024),
        write: ServiceModel::new(SimDuration::from_micros(220), 470 * 1024 * 1024),
        erase_block: ByteSize::from_kib(256),
        pe_cycle_limit: 3000,
    };
    let array = FlashArray::new(5, cfg, SimClock::new());
    OsdTarget::new(
        StripeManager::new(array, ByteSize::from_kib(16)),
        ProtectionPolicy::differentiated(),
    )
}

fn payload(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(13).wrapping_add(seed))
        .collect()
}

/// For every class, the exact number of whole-device failures it must
/// survive under Reo's policy on a five-device array:
/// metadata/dirty (replication) -> 4; hot (2-parity) -> 2; cold -> 0.
#[test]
fn survivability_matrix_by_class() {
    let cases = [
        (ObjectClass::Metadata, 4usize),
        (ObjectClass::Dirty, 4),
        (ObjectClass::HotClean, 2),
        (ObjectClass::ColdClean, 0),
    ];
    for (class, survives) in cases {
        // Check the boundary from both sides.
        for failures in 0..=(survives + 1).min(4) {
            let mut t = target();
            let data = payload(100_000, class.id());
            t.create_object(
                key(1),
                ByteSize::from_bytes(data.len() as u64),
                class,
                Some(&data),
            )
            .unwrap();
            for d in 0..failures {
                t.fail_device(DeviceId(d));
            }
            let status = t.object_status(key(1)).unwrap();
            if failures == 0 {
                assert_eq!(status, ObjectStatus::Intact, "{class}");
            } else if failures <= survives {
                assert_ne!(status, ObjectStatus::Lost, "{class} at {failures} failures");
                let out = t.read_object(key(1)).unwrap();
                assert_eq!(
                    out.bytes.as_deref(),
                    Some(&data[..]),
                    "{class} at {failures} failures"
                );
            } else {
                assert_eq!(
                    status,
                    ObjectStatus::Lost,
                    "{class} must die at {failures} failures"
                );
            }
        }
    }
}

/// Every (failure set, spare, rebuild) cycle restores hot objects to
/// byte-exact intact state, for every pair of failed devices.
#[test]
fn rebuild_matrix_every_double_failure() {
    for a in 0..5usize {
        for b in (a + 1)..5 {
            let mut t = target();
            let data = payload(80_000, (a * 5 + b) as u8);
            t.create_object(
                key(1),
                ByteSize::from_bytes(data.len() as u64),
                ObjectClass::HotClean,
                Some(&data),
            )
            .unwrap();
            t.fail_device(DeviceId(a));
            t.fail_device(DeviceId(b));
            t.insert_spare(DeviceId(a));
            t.insert_spare(DeviceId(b));
            while t.recover_next().is_some() {}
            let out = t.read_object(key(1)).unwrap();
            assert!(!out.degraded, "({a},{b})");
            assert_eq!(out.bytes.as_deref(), Some(&data[..]), "({a},{b})");
        }
    }
}

/// Partial corruption matrix: corrupt each data chunk of a hot object in
/// turn; scrub heals every single one.
#[test]
fn scrub_matrix_every_chunk() {
    let data = payload(96_000, 7); // 6 chunks of 16 KiB
    let chunks = data.len().div_ceil(16 * 1024) as u64;
    for victim in 0..chunks {
        let mut t = target();
        t.create_object(
            key(1),
            ByteSize::from_bytes(data.len() as u64),
            ObjectClass::HotClean,
            Some(&data),
        )
        .unwrap();
        t.corrupt_chunk(key(1), victim).unwrap();
        let (repaired, lost) = t.scrub();
        assert_eq!(repaired, vec![key(1)], "chunk {victim}");
        assert!(lost.is_empty(), "chunk {victim}");
        let out = t.read_object(key(1)).unwrap();
        assert!(!out.degraded);
        assert_eq!(out.bytes.as_deref(), Some(&data[..]), "chunk {victim}");
    }
}

/// Two simultaneous chunk corruptions on different devices: survivable for
/// 2-parity hot objects no matter which pair.
#[test]
fn double_chunk_corruption_matrix() {
    let data = payload(48_000, 9); // 3 chunks = exactly one 3+2 stripe
    for a in 0..3u64 {
        for b in (a + 1)..3 {
            let mut t = target();
            t.create_object(
                key(1),
                ByteSize::from_bytes(data.len() as u64),
                ObjectClass::HotClean,
                Some(&data),
            )
            .unwrap();
            t.corrupt_chunk(key(1), a).unwrap();
            t.corrupt_chunk(key(1), b).unwrap();
            let out = t.read_object(key(1)).unwrap();
            assert!(out.degraded, "({a},{b})");
            assert_eq!(out.bytes.as_deref(), Some(&data[..]), "({a},{b})");
        }
    }
}

/// Mixed-population stress: objects of all classes, staggered failures
/// with spare insertions; the target's index, space accounting, and
/// reads stay consistent throughout.
#[test]
fn mixed_population_failure_cycle() {
    let mut t = target();
    let mut live: Vec<(ObjectKey, ObjectClass, Vec<u8>)> = Vec::new();
    for i in 0..16u64 {
        let class = ObjectClass::ALL[(i % 4) as usize];
        let data = payload(30_000 + (i as usize * 1_000), i as u8);
        t.create_object(
            key(i),
            ByteSize::from_bytes(data.len() as u64),
            class,
            Some(&data),
        )
        .unwrap();
        live.push((key(i), class, data));
    }

    for round in 0..3usize {
        t.fail_device(DeviceId(round));
        let lost = t.insert_spare(DeviceId(round));
        // Evict the irrecoverable ones like the cache manager would.
        for k in &lost {
            t.remove_object(*k).unwrap();
            live.retain(|(lk, _, _)| lk != k);
        }
        while t.recover_next().is_some() {}
        // Everything still indexed reads back byte-exact and intact.
        for (k, class, data) in &live {
            let out = t
                .read_object(*k)
                .unwrap_or_else(|e| panic!("round {round} {class} {k}: {e}"));
            assert!(!out.degraded, "round {round} {k}");
            assert_eq!(out.bytes.as_deref(), Some(&data[..]), "round {round} {k}");
        }
        // Only cold objects can have been dropped.
        for k in lost {
            assert!(!t.contains(k));
        }
    }
    assert!(
        live.iter()
            .filter(|(_, c, _)| *c != ObjectClass::ColdClean)
            .count()
            >= 12,
        "protected classes must all survive three failure cycles"
    );
}
