//! Exhaustive failure matrices: every class × every failure pattern, with
//! real payloads, through the full OSD stack.

use reo_repro::flashsim::{DeviceConfig, DeviceId, FlashArray};
use reo_repro::osd::{ObjectClass, ObjectId, ObjectKey, PartitionId};
use reo_repro::osd_target::{OsdTarget, ProtectionPolicy};
use reo_repro::sim::{ByteSize, ServiceModel, SimClock, SimDuration};
use reo_repro::stripe::{ObjectStatus, StripeManager};

fn key(i: u64) -> ObjectKey {
    ObjectKey::user(PartitionId::FIRST, ObjectId::new(0x20000 + i))
}

fn target() -> OsdTarget {
    let cfg = DeviceConfig {
        capacity: ByteSize::from_mib(128),
        read: ServiceModel::new(SimDuration::from_micros(90), 520 * 1024 * 1024),
        write: ServiceModel::new(SimDuration::from_micros(220), 470 * 1024 * 1024),
        erase_block: ByteSize::from_kib(256),
        pe_cycle_limit: 3000,
    };
    let array = FlashArray::new(5, cfg, SimClock::new());
    OsdTarget::new(
        StripeManager::new(array, ByteSize::from_kib(16)),
        ProtectionPolicy::differentiated(),
    )
}

fn payload(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(13).wrapping_add(seed))
        .collect()
}

/// For every class, the exact number of whole-device failures it must
/// survive under Reo's policy on a five-device array:
/// metadata/dirty (replication) -> 4; hot (2-parity) -> 2; cold -> 0.
#[test]
fn survivability_matrix_by_class() {
    let cases = [
        (ObjectClass::Metadata, 4usize),
        (ObjectClass::Dirty, 4),
        (ObjectClass::HotClean, 2),
        (ObjectClass::ColdClean, 0),
    ];
    for (class, survives) in cases {
        // Check the boundary from both sides.
        for failures in 0..=(survives + 1).min(4) {
            let mut t = target();
            let data = payload(100_000, class.id());
            t.create_object(
                key(1),
                ByteSize::from_bytes(data.len() as u64),
                class,
                Some(&data),
            )
            .unwrap();
            for d in 0..failures {
                t.fail_device(DeviceId(d));
            }
            let status = t.object_status(key(1)).unwrap();
            if failures == 0 {
                assert_eq!(status, ObjectStatus::Intact, "{class}");
            } else if failures <= survives {
                assert_ne!(status, ObjectStatus::Lost, "{class} at {failures} failures");
                let out = t.read_object(key(1)).unwrap();
                assert_eq!(
                    out.bytes.as_deref(),
                    Some(&data[..]),
                    "{class} at {failures} failures"
                );
            } else {
                assert_eq!(
                    status,
                    ObjectStatus::Lost,
                    "{class} must die at {failures} failures"
                );
            }
        }
    }
}

/// Every (failure set, spare, rebuild) cycle restores hot objects to
/// byte-exact intact state, for every pair of failed devices.
#[test]
fn rebuild_matrix_every_double_failure() {
    for a in 0..5usize {
        for b in (a + 1)..5 {
            let mut t = target();
            let data = payload(80_000, (a * 5 + b) as u8);
            t.create_object(
                key(1),
                ByteSize::from_bytes(data.len() as u64),
                ObjectClass::HotClean,
                Some(&data),
            )
            .unwrap();
            t.fail_device(DeviceId(a));
            t.fail_device(DeviceId(b));
            t.insert_spare(DeviceId(a));
            t.insert_spare(DeviceId(b));
            while t.recover_next().is_some() {}
            let out = t.read_object(key(1)).unwrap();
            assert!(!out.degraded, "({a},{b})");
            assert_eq!(out.bytes.as_deref(), Some(&data[..]), "({a},{b})");
        }
    }
}

/// Partial corruption matrix: corrupt each data chunk of a hot object in
/// turn; scrub heals every single one.
#[test]
fn scrub_matrix_every_chunk() {
    let data = payload(96_000, 7); // 6 chunks of 16 KiB
    let chunks = data.len().div_ceil(16 * 1024) as u64;
    for victim in 0..chunks {
        let mut t = target();
        t.create_object(
            key(1),
            ByteSize::from_bytes(data.len() as u64),
            ObjectClass::HotClean,
            Some(&data),
        )
        .unwrap();
        t.corrupt_chunk(key(1), victim).unwrap();
        let (repaired, lost) = t.scrub();
        assert_eq!(repaired, vec![key(1)], "chunk {victim}");
        assert!(lost.is_empty(), "chunk {victim}");
        let out = t.read_object(key(1)).unwrap();
        assert!(!out.degraded);
        assert_eq!(out.bytes.as_deref(), Some(&data[..]), "chunk {victim}");
    }
}

/// Two simultaneous chunk corruptions on different devices: survivable for
/// 2-parity hot objects no matter which pair.
#[test]
fn double_chunk_corruption_matrix() {
    let data = payload(48_000, 9); // 3 chunks = exactly one 3+2 stripe
    for a in 0..3u64 {
        for b in (a + 1)..3 {
            let mut t = target();
            t.create_object(
                key(1),
                ByteSize::from_bytes(data.len() as u64),
                ObjectClass::HotClean,
                Some(&data),
            )
            .unwrap();
            t.corrupt_chunk(key(1), a).unwrap();
            t.corrupt_chunk(key(1), b).unwrap();
            let out = t.read_object(key(1)).unwrap();
            assert!(out.degraded, "({a},{b})");
            assert_eq!(out.bytes.as_deref(), Some(&data[..]), "({a},{b})");
        }
    }
}

/// Mixed-population stress: objects of all classes, staggered failures
/// with spare insertions; the target's index, space accounting, and
/// reads stay consistent throughout.
#[test]
fn mixed_population_failure_cycle() {
    let mut t = target();
    let mut live: Vec<(ObjectKey, ObjectClass, Vec<u8>)> = Vec::new();
    for i in 0..16u64 {
        let class = ObjectClass::ALL[(i % 4) as usize];
        let data = payload(30_000 + (i as usize * 1_000), i as u8);
        t.create_object(
            key(i),
            ByteSize::from_bytes(data.len() as u64),
            class,
            Some(&data),
        )
        .unwrap();
        live.push((key(i), class, data));
    }

    for round in 0..3usize {
        t.fail_device(DeviceId(round));
        let lost = t.insert_spare(DeviceId(round));
        // Evict the irrecoverable ones like the cache manager would.
        for k in &lost {
            t.remove_object(*k).unwrap();
            live.retain(|(lk, _, _)| lk != k);
        }
        while t.recover_next().is_some() {}
        // Everything still indexed reads back byte-exact and intact.
        for (k, class, data) in &live {
            let out = t
                .read_object(*k)
                .unwrap_or_else(|e| panic!("round {round} {class} {k}: {e}"));
            assert!(!out.degraded, "round {round} {k}");
            assert_eq!(out.bytes.as_deref(), Some(&data[..]), "round {round} {k}");
        }
        // Only cold objects can have been dropped.
        for k in lost {
            assert!(!t.contains(k));
        }
    }
    assert!(
        live.iter()
            .filter(|(_, c, _)| *c != ObjectClass::ColdClean)
            .count()
            >= 12,
        "protected classes must all survive three failure cycles"
    );
}

// ---------------------------------------------------------------------------
// Partial-failure injection: latent corruption, degraded reads with
// read-repair, transient timeouts, and end-to-end determinism.
// ---------------------------------------------------------------------------

use reo_repro::core::{
    CacheSystem, ExperimentPlan, ExperimentRunner, PlannedEvent, SchemeConfig, SystemConfig,
};
use reo_repro::flashsim::FaultPlan;
use reo_repro::workload::{Locality, Trace, WorkloadSpec};

/// Corruption within the parity tolerance is served byte-exact through the
/// degraded read path, which also repairs the object in place: the next
/// read is intact again and the medium-error/repair counters advance.
#[test]
fn tolerated_corruption_is_served_exactly_and_read_repaired() {
    let mut t = target();
    let data = payload(96_000, 21); // 6 chunks of 16 KiB across two 3+2 stripes
    t.create_object(
        key(1),
        ByteSize::from_bytes(data.len() as u64),
        ObjectClass::HotClean,
        Some(&data),
    )
    .unwrap();
    t.corrupt_chunk(key(1), 0).unwrap();
    t.corrupt_chunk(key(1), 4).unwrap();

    let out = t.read_object(key(1)).unwrap();
    assert!(out.degraded);
    assert_eq!(
        out.bytes.as_deref(),
        Some(&data[..]),
        "zero corrupt payloads"
    );
    let stats = t.stats();
    assert!(stats.medium_errors >= 1);
    assert!(stats.repairs >= 1, "degraded read must repair in place");

    // Read-repair healed it: the second read is clean.
    let again = t.read_object(key(1)).unwrap();
    assert!(!again.degraded, "read-repair must leave the object intact");
    assert_eq!(again.bytes.as_deref(), Some(&data[..]));
}

/// Corruption beyond the tolerance fails loudly — an error, never wrong
/// bytes — for a hot (2-parity) object with all three data chunks of a
/// stripe gone, and for a cold (unprotected) object with a single hit.
#[test]
fn excess_corruption_fails_loudly_never_wrong_data() {
    let data = payload(48_000, 23); // 3 chunks = exactly one 3+2 stripe
    let mut t = target();
    t.create_object(
        key(1),
        ByteSize::from_bytes(data.len() as u64),
        ObjectClass::HotClean,
        Some(&data),
    )
    .unwrap();
    for chunk in 0..3 {
        t.corrupt_chunk(key(1), chunk).unwrap();
    }
    assert_eq!(t.object_status(key(1)).unwrap(), ObjectStatus::Lost);
    assert!(t.read_object(key(1)).is_err(), "3 of 3+2 gone must error");

    let mut t = target();
    t.create_object(
        key(2),
        ByteSize::from_bytes(data.len() as u64),
        ObjectClass::ColdClean,
        Some(&data),
    )
    .unwrap();
    t.corrupt_chunk(key(2), 1).unwrap();
    assert_eq!(t.object_status(key(2)).unwrap(), ObjectStatus::Lost);
    assert!(
        t.read_object(key(2)).is_err(),
        "unprotected cold objects die with their first corrupt chunk"
    );
}

/// Transient read timeouts are absorbed by the stripe layer's bounded
/// retries: every read still returns the exact payload, and the retry
/// counter shows the faults actually fired.
#[test]
fn transient_timeouts_are_retried_to_byte_exact_reads() {
    let mut t = target();
    let mut plan = FaultPlan::new(0xEE);
    let mut bodies = Vec::new();
    for i in 0..12u64 {
        let data = payload(40_000 + i as usize * 3_000, i as u8);
        t.create_object(
            key(i),
            ByteSize::from_bytes(data.len() as u64),
            ObjectClass::HotClean,
            Some(&data),
        )
        .unwrap();
        bodies.push(data);
    }
    t.arm_transient_faults(&mut plan, 0.10);
    for round in 0..4 {
        for (i, data) in bodies.iter().enumerate() {
            let out = t.read_object(key(i as u64)).unwrap();
            assert!(!out.degraded, "round {round} object {i}");
            assert_eq!(
                out.bytes.as_deref(),
                Some(&data[..]),
                "round {round} object {i}"
            );
        }
    }
    assert!(
        t.transient_retries() > 0,
        "a 10% timeout rate over hundreds of chunk reads must trip retries"
    );
}

fn fault_trace(seed: u64) -> Trace {
    WorkloadSpec {
        objects: 120,
        mean_object_size: ByteSize::from_kib(192),
        size_sigma: 0.6,
        locality: Locality::Medium,
        requests: 900,
        write_ratio: 0.0,
        temporal_reuse: Locality::Medium.temporal_reuse(),
        reuse_window: 100,
    }
    .generate(seed)
}

fn fault_system(t: &Trace) -> CacheSystem {
    let cache = t.summary().data_set_bytes.scale(0.40);
    let config = SystemConfig::paper_defaults(SchemeConfig::Reo { reserve: 0.20 }, cache)
        .with_chunk_size(ByteSize::from_kib(32));
    let mut sys = CacheSystem::new(config);
    sys.populate(t.objects());
    sys
}

/// Heavy latent corruption mid-run: the system keeps serving every request
/// (no panics), falls back to the backend for irrecoverably damaged
/// objects, and counts those fallbacks.
#[test]
fn heavy_corruption_degrades_to_backend_fallbacks() {
    let t = fault_trace(11);
    let mut sys = fault_system(&t);
    let plan = ExperimentPlan {
        warmup_passes: 1,
        events: vec![
            (300, PlannedEvent::CorruptChunks { ppm: 800_000 }),
            (500, PlannedEvent::CorruptChunks { ppm: 800_000 }),
            (700, PlannedEvent::CorruptChunks { ppm: 800_000 }),
        ],
        ..Default::default()
    };
    let result = ExperimentRunner::run(&mut sys, &t, &plan);
    assert_eq!(result.totals.requests, 900, "every request must be served");
    assert!(
        result.totals.unrecoverable_fallbacks > 0,
        "80% chunk corruption must push some reads to the backend"
    );
    // Correct bytes still flow: every fallback was served from the backend
    // (the trace completed), and the damaged objects were evicted rather
    // than served corrupt.
    assert!(result.totals.read_hits > 0, "the cache must keep working");
}

/// The full injected-fault pipeline is deterministic: two systems with
/// equal configurations, traces, and fault seeds produce identical
/// metrics, window by window, counter by counter.
#[test]
fn fault_injection_is_deterministic_end_to_end() {
    let t = fault_trace(13);
    let plan = ExperimentPlan {
        warmup_passes: 1,
        events: vec![
            (0, PlannedEvent::TransientFaults { ppm: 20_000 }),
            (0, PlannedEvent::StartScrub),
            (250, PlannedEvent::CorruptChunks { ppm: 100_000 }),
            (
                500,
                PlannedEvent::SlowDevice {
                    device: DeviceId(2),
                    factor_pct: 400,
                },
            ),
            (700, PlannedEvent::CorruptChunks { ppm: 200_000 }),
        ],
        ..Default::default()
    };
    let run = || {
        let mut sys = fault_system(&t);
        let result = ExperimentRunner::run(&mut sys, &t, &plan);
        let windows: Vec<_> = result.windows().into_iter().cloned().collect();
        (result.totals.clone(), windows, sys.transient_retries())
    };
    let (totals_a, windows_a, retries_a) = run();
    let (totals_b, windows_b, retries_b) = run();
    assert_eq!(totals_a, totals_b, "totals must match byte for byte");
    assert_eq!(windows_a, windows_b, "every window must match");
    assert_eq!(retries_a, retries_b);
    assert!(totals_a.medium_errors > 0, "the faults must actually fire");
    assert!(totals_a.scrub_passes > 0);
}
