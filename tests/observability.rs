//! Observability integration tests: the `reo-trace` per-layer span
//! recorder threaded through a full system, the per-class metric rows,
//! the interaction of fault counters with window rolling while the
//! background scrubber is running, causal trace trees across the
//! cluster, flight-recorder postmortems, and per-class SLO burn rates.

use reo_repro::core::{
    CacheSystem, ClusterSystem, ExperimentPlan, PlannedEvent, SchemeConfig, SystemConfig,
    CLASS_LABELS,
};
use reo_repro::sim::{ByteSize, Layer, TraceTree};
use reo_repro::workload::{Locality, Trace, WorkloadSpec};

fn trace(requests: usize, write_ratio: f64, seed: u64) -> Trace {
    WorkloadSpec {
        objects: 120,
        mean_object_size: ByteSize::from_kib(256),
        size_sigma: 0.6,
        locality: Locality::Medium,
        requests,
        write_ratio,
        temporal_reuse: Locality::Medium.temporal_reuse(),
        reuse_window: 100,
    }
    .generate(seed)
}

fn system(scheme: SchemeConfig, t: &Trace, frac: f64) -> CacheSystem {
    let cache = t.summary().data_set_bytes.scale(frac);
    let config =
        SystemConfig::paper_defaults(scheme, cache).with_chunk_size(ByteSize::from_kib(32));
    let mut sys = CacheSystem::new(config);
    sys.populate(t.objects());
    sys
}

#[test]
fn tracing_is_off_by_default_and_records_when_enabled() {
    let t = trace(400, 0.2, 21);
    let mut sys = system(SchemeConfig::Reo { reserve: 0.20 }, &t, 0.15);
    for r in t.requests().iter().take(200) {
        sys.handle(r);
    }
    let b = sys.tracer().breakdown();
    assert_eq!(b.requests, 0, "disabled tracer must not count requests");
    assert!(b.layers.is_empty(), "disabled tracer must not record spans");

    sys.enable_tracing();
    for r in t.requests().iter().skip(200) {
        sys.handle(r);
    }
    let b = sys.tracer().breakdown();
    assert_eq!(b.requests, 200, "one traced request per handle()");
    for layer in [Layer::Cache, Layer::Target, Layer::Stripe, Layer::Flash] {
        assert!(
            b.layer(layer).is_some(),
            "layer {layer} must have recorded spans"
        );
    }
    // Cache spans bracket whole requests; they must dominate the nested
    // target path (the backend is not nested — its background-flush
    // spans cover disk occupancy beyond request completion). Exclusive
    // time can never exceed a layer's own inclusive time.
    let cache_total = b.layer(Layer::Cache).unwrap().total;
    assert!(cache_total >= b.layer(Layer::Target).unwrap().total);
    for layer in Layer::ALL {
        if let Some(row) = b.layer(layer) {
            assert!(b.exclusive(layer) <= row.total, "{layer}");
        }
    }
    assert!(!sys.tracer().recent_spans().is_empty());
}

#[test]
fn per_class_rows_and_byte_split_accumulate() {
    let t = trace(1_200, 0.3, 22);
    let mut sys = system(SchemeConfig::Reo { reserve: 0.20 }, &t, 0.12);
    for r in t.requests() {
        sys.handle(r);
    }
    let totals = sys.metrics().totals();
    assert!(!totals.classes.is_empty(), "class rows must accumulate");
    let class_requests: u64 = totals.classes.iter().map(|c| c.requests).sum();
    assert_eq!(
        class_requests, totals.requests,
        "every request lands in exactly one class row"
    );
    assert!(
        totals.classes.iter().any(|c| c.label == "dirty"),
        "a 30%-write run must attribute requests to the dirty class"
    );
    // The byte split: parity and replication make the flash move more
    // bytes than clients asked for on the write path.
    assert!(totals.requested_bytes > ByteSize::ZERO);
    assert!(totals.device_write_bytes > ByteSize::ZERO);
    assert!(
        totals.write_amplification() > 1.0,
        "redundancy amplifies writes"
    );
}

#[test]
fn fault_counters_roll_and_reset_with_scrubber_enabled() {
    let t = trace(1_500, 0.1, 23);
    let mut sys = system(SchemeConfig::Parity(2), &t, 0.25);
    for r in t.requests() {
        sys.handle(r);
    }
    sys.enable_scrubber();
    let corrupted = sys.inject_chunk_corruption(0.05);
    assert!(corrupted > 0, "seeded corruption must land");
    for r in t.requests() {
        sys.handle(r);
    }
    let totals = sys.metrics().totals();
    assert!(totals.scrub_passes > 0, "scrubber must complete passes");
    assert!(totals.medium_errors > 0, "corruption must surface");
    assert!(totals.repairs > 0, "2-parity damage must be repairable");

    // Rolling the event window hands back the accumulated fault counters
    // and starts a fresh window; the totals keep counting.
    let now = sys.clock().now();
    let rolled = sys.metrics_mut().roll_window(now);
    assert_eq!(rolled.medium_errors, totals.medium_errors);
    assert_eq!(rolled.repairs, totals.repairs);
    assert_eq!(rolled.scrub_passes, totals.scrub_passes);
    let fresh = sys.metrics().window();
    assert_eq!(fresh.medium_errors, 0);
    assert_eq!(fresh.repairs, 0);
    assert_eq!(fresh.requests, 0);
    assert_eq!(sys.metrics().totals().repairs, totals.repairs);

    // reset_all zeroes totals and window; the scrubber keeps running and
    // the counters accumulate again from zero (the delta cursor must not
    // double-count or underflow across the reset).
    let now = sys.clock().now();
    sys.metrics_mut().reset_all(now);
    assert_eq!(sys.metrics().totals().scrub_passes, 0);
    assert_eq!(sys.metrics().totals().medium_errors, 0);
    sys.inject_chunk_corruption(0.05);
    for r in t.requests() {
        sys.handle(r);
    }
    let after = sys.metrics().totals();
    assert!(after.scrub_passes > 0, "scrubber still runs after reset");
    assert!(
        after.scrub_passes < totals.scrub_passes + after.requests,
        "post-reset counters restart from zero, not from the old total"
    );
}

#[test]
fn scrubber_repairs_show_in_window_and_tracer_scrub_spans() {
    let t = trace(800, 0.0, 24);
    let mut sys = system(SchemeConfig::Reo { reserve: 0.40 }, &t, 0.20);
    for r in t.requests() {
        sys.handle(r);
    }
    sys.enable_tracing();
    sys.enable_scrubber();
    sys.inject_chunk_corruption(0.08);
    let now = sys.clock().now();
    sys.metrics_mut().reset_all(now);
    for r in t.requests() {
        sys.handle(r);
    }
    let window = sys.metrics().window();
    assert!(
        window.repairs > 0,
        "scrubber repairs land in the open window"
    );
    // Scrub steps run inside the target layer; with tracing on they
    // appear as target-layer spans labelled "scrub".
    let scrubs = sys
        .tracer()
        .recent_spans()
        .into_iter()
        .filter(|s| s.layer == Layer::Target && s.op == "scrub")
        .count();
    assert!(scrubs > 0, "scrub steps must be traced");
}

fn outage_cluster(seed: u64) -> (ClusterSystem, Vec<TraceTree>) {
    let t = trace(1_200, 0.2, seed);
    let cache = t.summary().data_set_bytes.scale(0.25);
    let config = SystemConfig::paper_defaults(SchemeConfig::Reo { reserve: 0.20 }, cache)
        .with_chunk_size(ByteSize::from_kib(32));
    let mut cluster = ClusterSystem::new(config, 4);
    cluster.enable_tracing();
    let n = t.requests().len();
    let plan = ExperimentPlan {
        warmup_passes: 1,
        ..Default::default()
    }
    .with_event(n / 3, PlannedEvent::FailTarget(1))
    .with_event(2 * n / 3, PlannedEvent::RestoreTarget(1));
    cluster.run(&t, &plan);
    let exemplars = cluster.tracer().exemplars();
    (cluster, exemplars)
}

/// Walks up the parent chain of `span` and returns the layers visited,
/// innermost first (excluding `span` itself).
fn ancestor_layers(tree: &TraceTree, span_id: u32) -> Vec<Layer> {
    let mut layers = Vec::new();
    let mut at = span_id;
    loop {
        let node = tree.spans.iter().find(|s| s.id == at).expect("known span");
        if node.parent == 0 {
            break;
        }
        at = node.parent;
        layers.push(
            tree.spans
                .iter()
                .find(|s| s.id == at)
                .expect("parent")
                .layer,
        );
    }
    layers
}

#[test]
fn degraded_exemplar_traces_causality_from_cluster_to_flash() {
    let (_, exemplars) = outage_cluster(41);
    let sense_coded: Vec<&TraceTree> = exemplars.iter().filter(|t| t.sense.is_some()).collect();
    assert!(
        !sense_coded.is_empty(),
        "the outage window must retain sense-coded exemplars"
    );
    // Every exemplar roots at the placement layer (cluster entry).
    for tree in &exemplars {
        let roots: Vec<_> = tree.spans.iter().filter(|s| s.parent == 0).collect();
        assert_eq!(roots.len(), 1, "one root per request tree");
        assert_eq!(roots[0].layer, Layer::Placement, "cluster entry roots");
    }
    // At least one exemplar shows the full causal path: a flash or
    // backend leaf whose ancestry climbs stripe → target → cache →
    // placement (backend leaves hang directly under cache).
    let full_path = exemplars.iter().any(|tree| {
        tree.spans.iter().any(|s| {
            let above = ancestor_layers(tree, s.id);
            s.layer == Layer::Flash
                && above.contains(&Layer::Stripe)
                && above.contains(&Layer::Target)
                && above.contains(&Layer::Cache)
                && above.contains(&Layer::Placement)
        })
    });
    assert!(
        full_path,
        "an exemplar must trace placement → cache → target → stripe → flash"
    );
    // Degraded service leaves its mark: some sense-coded exemplar either
    // served from the backend or carries an outage annotation.
    let degraded_visible = sense_coded.iter().any(|tree| {
        tree.spans.iter().any(|s| s.layer == Layer::Backend)
            || tree.annotations.iter().any(|a| a.label == "outage-serve")
    });
    assert!(
        degraded_visible,
        "degraded exemplars must show the alternate serving path"
    );
}

#[test]
fn same_seed_runs_retain_identical_exemplars_and_postmortems() {
    let (cluster_a, exemplars_a) = outage_cluster(43);
    let (cluster_b, exemplars_b) = outage_cluster(43);
    assert_eq!(
        exemplars_a, exemplars_b,
        "trace trees must replay identically for the same seed"
    );
    assert_eq!(
        cluster_a.flight().postmortems(),
        cluster_b.flight().postmortems(),
        "postmortem event sequences must replay identically for the same seed"
    );
    assert!(!cluster_a.flight().postmortems().is_empty());
}

#[test]
fn slo_snapshot_tracks_burn_rates_per_class() {
    let t = trace(1_500, 0.3, 25);
    let mut sys = system(SchemeConfig::Reo { reserve: 0.20 }, &t, 0.12);
    for r in t.requests() {
        sys.handle(r);
    }
    let totals = sys.metrics().totals();
    assert!(!totals.slos.is_empty(), "active classes export SLO rows");
    let mut last_slot = 0;
    for slo in &totals.slos {
        let slot = CLASS_LABELS
            .iter()
            .position(|&l| l == slo.class)
            .expect("known class label");
        assert!(slot >= last_slot, "SLO rows keep CLASS_LABELS order");
        last_slot = slot;
        assert!(slo.requests > 0, "only active classes appear");
        assert!((0.0..=100.0).contains(&slo.latency_compliance_pct()));
        assert!((0.0..=100.0).contains(&slo.availability_pct()));
        assert!(slo.latency_burn_fast() >= 0.0);
        assert!(slo.availability_burn_slow() >= 0.0);
    }
    let slo_requests: u64 = totals.slos.iter().map(|s| s.requests).sum();
    assert_eq!(
        slo_requests, totals.requests,
        "every request lands in exactly one SLO class"
    );
}
