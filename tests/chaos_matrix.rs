//! Seeded chaos matrix: randomized composed fault schedules — device
//! shootdowns, spare insertions, latent corruption, transient timeouts,
//! slow devices, power-loss crashes, and backend outages/slowdowns —
//! woven through live workloads, with the standing resilience invariants
//! checked after every quiesce:
//!
//! * no acknowledged dirty write is lost (every acked key still serves,
//!   through the cache or the backend — never a wrong answer, never a
//!   panic);
//! * the stripe layer's checksum-verified consistency scan finds nothing;
//! * the health machine returns to `Healthy` once faults clear and the
//!   rebuild queue drains;
//! * the recovery engine's ledger reconciles exactly
//!   (`enqueued == completed + pending + cancelled`).
//!
//! Schedules are drawn from a deterministic per-(seed, schedule) stream,
//! so a failing combination replays identically. Three pinned seeds run
//! eight composed schedules each.
//!
//! Dedicated scenarios cover the ISSUE's cascade cases: a second device
//! failure during rebuild inside the scheme's tolerance (recovery must
//! complete), beyond it (service degrades to backend-only `MediumError`
//! serving, never a panic), and a backend outage landing while the cache
//! is already read-only (requests shed with `NotReady` until restore).

//!
//! Node-level schedules extend the matrix to the cluster: a target
//! outage landing mid-device-rebuild, a rebalance interrupted by a
//! target failure, and a replace-then-rejoin membership dance — each
//! driven twice per seed to assert byte-identical replay, with the
//! no-acked-dirty-write-loss and quiesce-to-healthy invariants checked
//! at cluster scope.
//!
//! Replica-level schedules drive the same matrix under a 2-way
//! replication policy: an outage landing during the replica flush
//! window (with seeded divergence injection), a double outage
//! exceeding the factor (must degrade honestly), and a cluster-wide
//! crash mid-failback — each replayed for byte-identical fingerprints,
//! with the divergence ledger required to balance (100% of injected
//! divergences detected and repaired) after quiesce.
//!
//! Parity-level schedules drive a `k=4, m=2` parity group over six
//! targets: a single outage served by degraded reconstruction, a
//! double outage inside the `m=2` tolerance (still served by parity,
//! zero beyond-tolerance serves), a second outage landing while the
//! first target's group-aware repair is still draining, and a
//! cluster-wide crash mid-repair — each replayed for byte-identical
//! fingerprints (outcome sequence, per-target rows, and parity
//! counters), with zero acked dirty-write loss after quiesce.

use std::collections::BTreeMap;

use reo_repro::core::DeviceId;
use reo_repro::core::{
    CacheSystem, ClusterSystem, HealthState, ParityGroupPolicy, PlannedEvent, ReplicationPolicy,
    SchemeConfig, SystemConfig, TargetState,
};
use reo_repro::osd::{ObjectKey, SenseCode};
use reo_repro::sim::rng::DetRng;
use reo_repro::sim::ByteSize;
use reo_repro::workload::{Locality, Operation, Request, Trace, WorkloadSpec};

const SCHEDULES: u64 = 8;
const FAULT_POINTS: usize = 8;
const REQUESTS: usize = 1_600;
const DEVICES: usize = 5;

fn trace(seed: u64) -> Trace {
    WorkloadSpec {
        objects: 120,
        mean_object_size: ByteSize::from_kib(128),
        size_sigma: 0.7,
        locality: Locality::Medium,
        requests: REQUESTS,
        write_ratio: 0.3,
        temporal_reuse: Locality::Medium.temporal_reuse(),
        reuse_window: 120,
    }
    .generate(seed)
}

fn system(t: &Trace) -> CacheSystem {
    let cache = t.summary().data_set_bytes.scale(0.10);
    let mut config = SystemConfig::paper_defaults(SchemeConfig::Reo { reserve: 0.20 }, cache);
    config.chunk_size = ByteSize::from_kib(16);
    config.checkpoint_period = 300;
    let mut sys = CacheSystem::new(config);
    sys.populate(t.objects());
    sys
}

fn failed_set(sys: &CacheSystem) -> Vec<DeviceId> {
    (0..DEVICES)
        .map(DeviceId)
        .filter(|&d| !sys.target().array().device(d).is_healthy())
        .collect()
}

/// Applies one randomly drawn fault. The first point of every schedule is
/// pinned to a device failure so each run exercises the health machine.
fn apply_fault(sys: &mut CacheSystem, rng: &mut DetRng, point: usize) {
    let roll = if point == 0 { 0 } else { rng.below(8) };
    match roll {
        0 => {
            // Fail a healthy device, staying within Dirty-class tolerance
            // (replication survives concurrent failures, but the menu caps
            // at two so clean classes keep a recovery path too).
            let failed = failed_set(sys);
            if failed.len() < 2 {
                let healthy: Vec<DeviceId> = (0..DEVICES)
                    .map(DeviceId)
                    .filter(|d| !failed.contains(d))
                    .collect();
                let pick = healthy[rng.below(healthy.len() as u64) as usize];
                sys.fail_device(pick);
            }
        }
        1 => {
            let failed = failed_set(sys);
            if !failed.is_empty() {
                let pick = failed[rng.below(failed.len() as u64) as usize];
                sys.insert_spare(pick);
            }
        }
        2 => {
            let _ = sys.inject_chunk_corruption((1_000 + rng.below(19_000)) as f64 / 1e6);
        }
        3 => sys.arm_transient_faults((500 + rng.below(4_500)) as f64 / 1e6),
        4 => {
            let device = DeviceId(rng.below(DEVICES as u64) as usize);
            let factor = (150 + rng.below(250)) as f64 / 100.0;
            sys.slow_device(device, factor);
        }
        5 => {
            sys.crash();
            sys.recover().expect("restart recovery after chaos crash");
        }
        6 => {
            // Toggle a backend outage window.
            if sys.backend().is_down() {
                sys.restore_backend();
            } else {
                sys.fail_backend();
            }
        }
        _ => sys.slow_backend((10 + rng.below(30)) as f64 / 10.0),
    }
}

/// Clears every standing fault, spares every failed device, and drains
/// the rebuild queue — the quiesce step the invariants are checked after.
fn quiesce(sys: &mut CacheSystem) {
    sys.restore_backend();
    sys.slow_backend(1.0);
    sys.arm_transient_faults(0.0);
    for d in 0..DEVICES {
        sys.slow_device(DeviceId(d), 1.0);
    }
    for d in failed_set(sys) {
        sys.insert_spare(d);
    }
    assert!(sys.drain_recovery(1_000_000), "rebuild queue must drain");
}

fn assert_ledger_reconciles(sys: &CacheSystem, label: &str) {
    let engine = sys.target().recovery_engine();
    assert_eq!(engine.pending(), 0, "{label}: rebuilds left pending");
    assert_eq!(
        engine.enqueued_total(),
        engine.completed_total() + engine.pending() as u64 + engine.cancelled_total(),
        "{label}: recovery ledger out of balance"
    );
}

fn chaos_run(seed: u64, schedule: u64) {
    let label = format!("seed {seed} schedule {schedule}");
    let t = trace(seed);
    let mut sys = system(&t);
    // Keep acknowledged dirty writes resident so the no-acked-write-lost
    // invariant is tested against live dirty state, not flushed copies.
    sys.set_dirty_flush_watermark(1.0);
    let mut rng = DetRng::from_seed(seed).derive(&format!("chaos-{schedule}"));

    let stride = REQUESTS / FAULT_POINTS;
    let points: Vec<usize> = (0..FAULT_POINTS)
        .map(|k| k * stride + 20 + rng.below((stride - 40) as u64) as usize)
        .collect();

    let mut acked: BTreeMap<ObjectKey, ByteSize> = BTreeMap::new();
    let mut next = 0usize;
    for (i, r) in t.requests().iter().enumerate() {
        if next < points.len() && i == points[next] {
            apply_fault(&mut sys, &mut rng, next);
            next += 1;
        }
        let outcome = sys.handle(r);
        assert_ne!(
            outcome.sense,
            SenseCode::Failure,
            "{label}: request {i} returned an opaque failure"
        );
        if r.op == Operation::Write
            && matches!(
                outcome.sense,
                SenseCode::Success | SenseCode::RecoveredError
            )
        {
            acked.insert(r.key, r.size);
        }
    }
    assert_eq!(next, FAULT_POINTS, "{label}: every fault point must fire");

    quiesce(&mut sys);

    let snap = sys.resilience();
    assert_eq!(
        sys.health(),
        HealthState::Healthy,
        "{label}: quiesced system must heal (snapshot: {snap:?})"
    );
    assert!(
        snap.health_transitions > 0,
        "{label}: the pinned first failure must move the health machine"
    );
    assert_eq!(
        sys.dirty_data_lost(),
        0,
        "{label}: acknowledged dirty data lost"
    );
    let violations = sys.target().verify_consistency();
    assert!(violations.is_empty(), "{label}: {violations:?}");
    assert_ledger_reconciles(&sys, &label);

    // Every acknowledged write still serves correct (checksum-verified)
    // bytes — from the cache, degraded reconstruction, or the backend.
    for (&key, &size) in &acked {
        let read = Request {
            key,
            op: Operation::Read,
            size,
        };
        let outcome = sys.handle(&read);
        assert!(
            matches!(
                outcome.sense,
                SenseCode::Success | SenseCode::RecoveredError | SenseCode::MediumError
            ),
            "{label}: acked write {key:?} unreadable after quiesce ({:?})",
            outcome.sense
        );
    }
}

fn chaos_matrix(seed: u64) {
    for schedule in 0..SCHEDULES {
        chaos_run(seed, schedule);
    }
}

#[test]
fn chaos_matrix_seed_11() {
    chaos_matrix(11);
}

#[test]
fn chaos_matrix_seed_42() {
    chaos_matrix(42);
}

#[test]
fn chaos_matrix_seed_1234() {
    chaos_matrix(1234);
}

// ---- node-level (cluster) chaos -----------------------------------------

/// The three node-level schedules, as `(request index, event)` lists.
/// Device ids are global (`devices_per_node * target + local`).
fn node_schedule(which: usize, n: usize) -> (usize, Vec<(usize, PlannedEvent)>) {
    match which {
        // Target outage mid-rebuild: target 1 loses a device, its spare
        // rebuild starts, then the whole node crashes while the rebuild
        // drains. Restore must journal-replay and finish the rebuild.
        0 => (
            4,
            vec![
                (n / 8, PlannedEvent::FailDevice(DeviceId(DEVICES))),
                (n / 8 + 40, PlannedEvent::InsertSpare(DeviceId(DEVICES))),
                (n / 4, PlannedEvent::FailTarget(1)),
                (5 * n / 8, PlannedEvent::RestoreTarget(1)),
            ],
        ),
        // Rebalance interrupted by a target failure: a newcomer joins
        // (migrations start flowing), then a target fails while the
        // rebalance is still draining.
        1 => (
            3,
            vec![
                (n / 4, PlannedEvent::AddTarget),
                (n / 4 + 30, PlannedEvent::FailTarget(0)),
                (3 * n / 4, PlannedEvent::RestoreTarget(0)),
            ],
        ),
        // Replace-then-rejoin: a target dies, a replacement joins and
        // takes over part of the ring, then the original rejoins —
        // ring-delta migration must hand off keys it no longer owns.
        _ => (
            3,
            vec![
                (n / 5, PlannedEvent::FailTarget(2)),
                (2 * n / 5, PlannedEvent::AddTarget),
                (3 * n / 5, PlannedEvent::RestoreTarget(2)),
            ],
        ),
    }
}

/// One deterministic cluster drive: every request routed with the
/// schedule's events applied at their indices, the full outcome
/// sequence recorded as the replay fingerprint, acked writes tracked.
struct ClusterDrive {
    cluster: ClusterSystem,
    fingerprint: Vec<(SenseCode, bool, bool)>,
    acked: BTreeMap<ObjectKey, ByteSize>,
}

fn drive_cluster(t: &Trace, which: usize, label: &str) -> ClusterDrive {
    let cache = t.summary().data_set_bytes.scale(0.10);
    let mut config = SystemConfig::paper_defaults(SchemeConfig::Reo { reserve: 0.20 }, cache);
    config.chunk_size = ByteSize::from_kib(16);
    config.checkpoint_period = 300;
    // Keep acknowledged dirty writes resident so the no-loss invariant
    // is tested against live dirty state, not flushed copies.
    config.dirty_flush_watermark = 1.0;
    let n = t.requests().len();
    let (targets, events) = node_schedule(which, n);
    let mut cluster = ClusterSystem::new(config, targets);
    cluster.populate(t.objects());

    let mut fingerprint = Vec::with_capacity(n);
    let mut acked: BTreeMap<ObjectKey, ByteSize> = BTreeMap::new();
    let mut next = 0usize;
    for (i, r) in t.requests().iter().enumerate() {
        while next < events.len() && events[next].0 == i {
            cluster.apply_event(events[next].1);
            next += 1;
        }
        let outcome = cluster.handle(r);
        assert_ne!(
            outcome.sense,
            SenseCode::Failure,
            "{label}: request {i} returned an opaque failure"
        );
        fingerprint.push((outcome.sense, outcome.hit, outcome.degraded));
        if r.op == Operation::Write
            && matches!(
                outcome.sense,
                SenseCode::Success | SenseCode::RecoveredError
            )
        {
            acked.insert(r.key, r.size);
        }
    }
    assert_eq!(next, events.len(), "{label}: every event must fire");
    ClusterDrive {
        cluster,
        fingerprint,
        acked,
    }
}

fn node_chaos_run(seed: u64, which: usize) {
    let label = format!("seed {seed} node-schedule {which}");
    let t = trace(seed);

    // Determinism: the same seed and schedule replay an identical
    // outcome sequence and identical per-target rows.
    let mut drive = drive_cluster(&t, which, &label);
    let replay = drive_cluster(&t, which, &label);
    assert_eq!(
        drive.fingerprint, replay.fingerprint,
        "{label}: replay diverged"
    );
    assert_eq!(
        drive.cluster.target_rows(),
        replay.cluster.target_rows(),
        "{label}: per-target rows diverged"
    );

    // Quiesce: restore anything still down, drain rebuilds and the
    // rebalance queue, and require the cluster to heal.
    let cluster = &mut drive.cluster;
    for target in 0..cluster.targets_created() {
        if cluster.target_state(target) == TargetState::Down {
            cluster.apply_event(PlannedEvent::RestoreTarget(target));
        }
    }
    assert!(
        cluster.drain_recovery(1_000_000),
        "{label}: rebuild/rebalance queues must drain"
    );
    let health = cluster.health();
    assert_eq!(health.down, 0, "{label}: {health:?}");
    assert_eq!(health.label, "healthy", "{label}: {health:?}");
    assert_eq!(
        cluster.dirty_data_lost(),
        0,
        "{label}: acknowledged dirty data lost"
    );

    // Every acknowledged write still serves through the ring — from the
    // owner's cache, a degraded path, or the backend; never a failure.
    for (&key, &size) in &drive.acked {
        let read = Request {
            key,
            op: Operation::Read,
            size,
        };
        let outcome = cluster.handle(&read);
        assert!(
            matches!(
                outcome.sense,
                SenseCode::Success | SenseCode::RecoveredError | SenseCode::MediumError
            ),
            "{label}: acked write {key:?} unreadable after quiesce ({:?})",
            outcome.sense
        );
    }
}

fn node_chaos_matrix(seed: u64) {
    for which in 0..3 {
        node_chaos_run(seed, which);
    }
}

#[test]
fn node_chaos_matrix_seed_11() {
    node_chaos_matrix(11);
}

#[test]
fn node_chaos_matrix_seed_42() {
    node_chaos_matrix(42);
}

#[test]
fn node_chaos_matrix_seed_1234() {
    node_chaos_matrix(1234);
}

// ---- replica-level (cross-target replication) chaos ----------------------

/// The three replica-level schedules, driven under a 2-way replication
/// policy on four targets.
fn replica_schedule(which: usize, n: usize) -> (usize, Vec<(usize, PlannedEvent)>) {
    match which {
        // Outage landing during the replica flush window: divergence is
        // injected while acked writes are still fanning out, then the
        // primary dies and its range is served from replica holders'
        // caches until restore.
        0 => (
            4,
            vec![
                (
                    n / 8,
                    PlannedEvent::InjectReplicaDivergence { ppm: 500_000 },
                ),
                (n / 4, PlannedEvent::FailTarget(0)),
                (
                    n / 2,
                    PlannedEvent::InjectReplicaDivergence { ppm: 500_000 },
                ),
                (5 * n / 8, PlannedEvent::RestoreTarget(0)),
            ],
        ),
        // Double outage beyond the 2-way factor: part of the namespace
        // loses every holder and must degrade honestly to backend-first
        // service — never a phantom hit, never a panic.
        1 => (
            4,
            vec![
                (n / 4, PlannedEvent::FailTarget(0)),
                (n / 4 + 20, PlannedEvent::FailTarget(1)),
                (5 * n / 8, PlannedEvent::RestoreTarget(0)),
                (5 * n / 8 + 20, PlannedEvent::RestoreTarget(1)),
            ],
        ),
        // Crash mid-failback: the restored target is still reconciling
        // its stale range through the rebuild throttle when every node
        // power-cuts and journal-replays.
        _ => (
            4,
            vec![
                (n / 5, PlannedEvent::FailTarget(2)),
                (2 * n / 5, PlannedEvent::RestoreTarget(2)),
                (2 * n / 5 + 5, PlannedEvent::Crash),
            ],
        ),
    }
}

fn drive_replica_cluster(t: &Trace, which: usize, label: &str) -> ClusterDrive {
    let cache = t.summary().data_set_bytes.scale(0.10);
    let mut config = SystemConfig::paper_defaults(SchemeConfig::Reo { reserve: 0.20 }, cache);
    config.chunk_size = ByteSize::from_kib(16);
    config.checkpoint_period = 300;
    config.dirty_flush_watermark = 1.0;
    let n = t.requests().len();
    let (targets, events) = replica_schedule(which, n);
    let mut cluster =
        ClusterSystem::new(config, targets).with_replication_policy(ReplicationPolicy::two_way());
    cluster.populate(t.objects());

    let mut fingerprint = Vec::with_capacity(n);
    let mut acked: BTreeMap<ObjectKey, ByteSize> = BTreeMap::new();
    let mut next = 0usize;
    for (i, r) in t.requests().iter().enumerate() {
        while next < events.len() && events[next].0 == i {
            cluster.apply_event(events[next].1);
            next += 1;
        }
        let outcome = cluster.handle(r);
        assert_ne!(
            outcome.sense,
            SenseCode::Failure,
            "{label}: request {i} returned an opaque failure"
        );
        fingerprint.push((outcome.sense, outcome.hit, outcome.degraded));
        if r.op == Operation::Write
            && matches!(
                outcome.sense,
                SenseCode::Success | SenseCode::RecoveredError
            )
        {
            acked.insert(r.key, r.size);
        }
    }
    assert_eq!(next, events.len(), "{label}: every event must fire");
    ClusterDrive {
        cluster,
        fingerprint,
        acked,
    }
}

fn replica_chaos_run(seed: u64, which: usize) {
    let label = format!("seed {seed} replica-schedule {which}");
    let t = trace(seed);

    // Determinism: the same seed and schedule replay an identical
    // outcome sequence, identical per-target rows, and identical
    // replication counters.
    let mut drive = drive_replica_cluster(&t, which, &label);
    let replay = drive_replica_cluster(&t, which, &label);
    assert_eq!(
        drive.fingerprint, replay.fingerprint,
        "{label}: replay diverged"
    );
    assert_eq!(
        drive.cluster.target_rows(),
        replay.cluster.target_rows(),
        "{label}: per-target rows diverged"
    );
    assert_eq!(
        drive.cluster.replication_snapshot(),
        replay.cluster.replication_snapshot(),
        "{label}: replication counters diverged"
    );

    let cluster = &mut drive.cluster;
    let mid_run = cluster.replication_snapshot();
    assert!(
        mid_run.fanout_writes > 0,
        "{label}: the 2-way policy must fan acked writes out"
    );
    if which == 0 {
        assert!(
            mid_run.divergences_injected > 0,
            "{label}: the seeded injection must diverge something"
        );
        assert!(
            mid_run.replica_serves > 0,
            "{label}: the failed range must be served from replica holders"
        );
    }
    if which == 1 {
        assert!(
            cluster.observed_degraded_fraction() > 0.0,
            "{label}: a double outage beyond the factor must degrade honestly"
        );
    }

    // Quiesce: restore anything still down, drain rebuilds/failback,
    // then run a complete anti-entropy pass and require the divergence
    // ledger to balance — every injected divergence detected and
    // repaired, nothing ever served silently stale.
    for target in 0..cluster.targets_created() {
        if cluster.target_state(target) == TargetState::Down {
            cluster.apply_event(PlannedEvent::RestoreTarget(target));
        }
    }
    assert!(
        cluster.drain_recovery(1_000_000),
        "{label}: rebuild/failback queues must drain"
    );
    cluster.run_anti_entropy_pass();
    let snap = cluster.replication_snapshot();
    assert_eq!(
        snap.divergences_detected, snap.divergences_injected,
        "{label}: anti-entropy missed injected divergences ({snap:?})"
    );
    assert_eq!(
        snap.divergences_repaired, snap.divergences_detected,
        "{label}: detected divergences left unrepaired ({snap:?})"
    );

    let health = cluster.health();
    assert_eq!(health.down, 0, "{label}: {health:?}");
    assert_eq!(health.label, "healthy", "{label}: {health:?}");
    assert_eq!(
        cluster.dirty_data_lost(),
        0,
        "{label}: acknowledged dirty data lost"
    );

    // Every acknowledged write still serves through the ring.
    for (&key, &size) in &drive.acked {
        let read = Request {
            key,
            op: Operation::Read,
            size,
        };
        let outcome = cluster.handle(&read);
        assert!(
            matches!(
                outcome.sense,
                SenseCode::Success | SenseCode::RecoveredError | SenseCode::MediumError
            ),
            "{label}: acked write {key:?} unreadable after quiesce ({:?})",
            outcome.sense
        );
    }
}

fn replica_chaos_matrix(seed: u64) {
    for which in 0..3 {
        replica_chaos_run(seed, which);
    }
}

#[test]
fn replica_chaos_matrix_seed_11() {
    replica_chaos_matrix(11);
}

#[test]
fn replica_chaos_matrix_seed_42() {
    replica_chaos_matrix(42);
}

#[test]
fn replica_chaos_matrix_seed_1234() {
    replica_chaos_matrix(1234);
}

// ---- parity-level (cross-target parity group) chaos ----------------------

/// The four parity-level schedules, driven under a `k=4, m=2` parity
/// group spanning six targets (one group, tolerance 2).
fn parity_schedule(which: usize, n: usize) -> (usize, Vec<(usize, PlannedEvent)>) {
    match which {
        // Single outage: the downed member's covered range is served by
        // degraded reconstruction from the surviving five shards until
        // the restore's group-aware repair completes.
        0 => (
            6,
            vec![
                (n / 4, PlannedEvent::FailTarget(1)),
                (5 * n / 8, PlannedEvent::RestoreTarget(1)),
            ],
        ),
        // Double outage inside the m=2 tolerance: both downed ranges
        // keep reconstructing from the remaining four shards — never a
        // beyond-tolerance fallback.
        1 => (
            6,
            vec![
                (n / 4, PlannedEvent::FailTarget(0)),
                (n / 4 + 20, PlannedEvent::FailTarget(1)),
                (5 * n / 8, PlannedEvent::RestoreTarget(0)),
                (5 * n / 8 + 20, PlannedEvent::RestoreTarget(1)),
            ],
        ),
        // Outage during repair: a second member dies while the first
        // restore's shard re-syncs are still draining through the
        // throttle — the group must keep serving and both repairs must
        // complete after quiesce.
        2 => (
            6,
            vec![
                (n / 5, PlannedEvent::FailTarget(2)),
                (2 * n / 5, PlannedEvent::RestoreTarget(2)),
                (n / 2, PlannedEvent::FailTarget(3)),
                (3 * n / 4, PlannedEvent::RestoreTarget(3)),
            ],
        ),
        // Crash mid-repair: every node power-cuts and journal-replays
        // while the restored member's redundancy is still being
        // re-established.
        _ => (
            6,
            vec![
                (n / 5, PlannedEvent::FailTarget(2)),
                (2 * n / 5, PlannedEvent::RestoreTarget(2)),
                (2 * n / 5 + 5, PlannedEvent::Crash),
            ],
        ),
    }
}

fn drive_parity_cluster(t: &Trace, which: usize, label: &str) -> ClusterDrive {
    let cache = t.summary().data_set_bytes.scale(0.10);
    let mut config = SystemConfig::paper_defaults(SchemeConfig::Reo { reserve: 0.20 }, cache);
    config.chunk_size = ByteSize::from_kib(16);
    config.checkpoint_period = 300;
    config.dirty_flush_watermark = 1.0;
    let n = t.requests().len();
    let (targets, events) = parity_schedule(which, n);
    let mut cluster =
        ClusterSystem::new(config, targets).with_parity_policy(ParityGroupPolicy::reo(4, 2));
    cluster.populate(t.objects());

    let mut fingerprint = Vec::with_capacity(n);
    let mut acked: BTreeMap<ObjectKey, ByteSize> = BTreeMap::new();
    let mut next = 0usize;
    for (i, r) in t.requests().iter().enumerate() {
        while next < events.len() && events[next].0 == i {
            cluster.apply_event(events[next].1);
            next += 1;
        }
        let outcome = cluster.handle(r);
        assert_ne!(
            outcome.sense,
            SenseCode::Failure,
            "{label}: request {i} returned an opaque failure"
        );
        fingerprint.push((outcome.sense, outcome.hit, outcome.degraded));
        if r.op == Operation::Write
            && matches!(
                outcome.sense,
                SenseCode::Success | SenseCode::RecoveredError
            )
        {
            acked.insert(r.key, r.size);
        }
    }
    assert_eq!(next, events.len(), "{label}: every event must fire");
    ClusterDrive {
        cluster,
        fingerprint,
        acked,
    }
}

fn parity_chaos_run(seed: u64, which: usize) {
    let label = format!("seed {seed} parity-schedule {which}");
    let t = trace(seed);

    // Determinism: the same seed and schedule replay an identical
    // outcome sequence, identical per-target rows, and identical
    // parity counters.
    let mut drive = drive_parity_cluster(&t, which, &label);
    let replay = drive_parity_cluster(&t, which, &label);
    assert_eq!(
        drive.fingerprint, replay.fingerprint,
        "{label}: replay diverged"
    );
    assert_eq!(
        drive.cluster.target_rows(),
        replay.cluster.target_rows(),
        "{label}: per-target rows diverged"
    );
    assert_eq!(
        drive.cluster.parity_snapshot(),
        replay.cluster.parity_snapshot(),
        "{label}: parity counters diverged"
    );

    let cluster = &mut drive.cluster;
    let mid_run = cluster.parity_snapshot();
    assert!(
        mid_run.stripe_updates > 0,
        "{label}: acked writes must keep encoding stripes"
    );
    assert!(
        mid_run.parity_serves > 0,
        "{label}: the downed range must be served by degraded reconstruction"
    );
    if which <= 1 {
        // Single and double outage both sit inside the m=2 tolerance:
        // no covered read may fall back beyond it.
        assert_eq!(
            mid_run.beyond_tolerance_serves, 0,
            "{label}: outages within tolerance must never exceed it"
        );
    }

    // Quiesce: restore anything still down, drain rebuilds and the
    // group-aware repair queue, and require the cluster to heal with
    // every queued repair completed.
    for target in 0..cluster.targets_created() {
        if cluster.target_state(target) == TargetState::Down {
            cluster.apply_event(PlannedEvent::RestoreTarget(target));
        }
    }
    assert!(
        cluster.drain_recovery(1_000_000),
        "{label}: rebuild/repair queues must drain"
    );
    let snap = cluster.parity_snapshot();
    assert!(
        snap.repairs_completed >= 1,
        "{label}: every restore must complete its group repair ({snap:?})"
    );

    let health = cluster.health();
    assert_eq!(health.down, 0, "{label}: {health:?}");
    assert_eq!(health.label, "healthy", "{label}: {health:?}");
    assert_eq!(
        cluster.dirty_data_lost(),
        0,
        "{label}: acknowledged dirty data lost"
    );

    // Every acknowledged write still serves through the ring — from
    // the owner's cache, a reconstruction, or the backend.
    for (&key, &size) in &drive.acked {
        let read = Request {
            key,
            op: Operation::Read,
            size,
        };
        let outcome = cluster.handle(&read);
        assert!(
            matches!(
                outcome.sense,
                SenseCode::Success | SenseCode::RecoveredError | SenseCode::MediumError
            ),
            "{label}: acked write {key:?} unreadable after quiesce ({:?})",
            outcome.sense
        );
    }
}

fn parity_chaos_matrix(seed: u64) {
    for which in 0..4 {
        parity_chaos_run(seed, which);
    }
}

#[test]
fn parity_chaos_matrix_seed_11() {
    parity_chaos_matrix(11);
}

#[test]
fn parity_chaos_matrix_seed_42() {
    parity_chaos_matrix(42);
}

#[test]
fn parity_chaos_matrix_seed_1234() {
    parity_chaos_matrix(1234);
}

/// A second device failure landing mid-rebuild, inside Reo's Dirty-class
/// tolerance: recovery must still complete and the system must heal.
#[test]
fn second_failure_during_rebuild_within_tolerance_completes() {
    let t = trace(7);
    let mut sys = system(&t);
    sys.set_dirty_flush_watermark(1.0);
    for r in t.requests().iter().take(800) {
        sys.handle(r);
    }
    sys.fail_device(DeviceId(0));
    sys.insert_spare(DeviceId(0));
    assert!(sys.recovery_pending() > 0, "rebuild must be in flight");
    assert_eq!(sys.health(), HealthState::Recovering);

    // The cascade: a second device dies while the first rebuild drains.
    sys.fail_device(DeviceId(1));
    assert_eq!(sys.health(), HealthState::Degraded(1));
    for r in t.requests().iter().skip(800) {
        let outcome = sys.handle(r);
        assert_ne!(outcome.sense, SenseCode::Failure);
    }
    sys.insert_spare(DeviceId(1));
    assert!(sys.drain_recovery(1_000_000));
    assert_eq!(sys.health(), HealthState::Healthy);
    assert_eq!(sys.dirty_data_lost(), 0);
    assert_ledger_reconciles(&sys, "within tolerance");
}

/// The same cascade beyond a uniform scheme's tolerance: 1-parity cannot
/// survive two concurrent failures, so the cache goes read-only and every
/// request is served by the backend (`MediumError` for reads) — never a
/// panic, never a wrong answer.
#[test]
fn second_failure_beyond_tolerance_degrades_to_backend_serving() {
    let t = trace(8);
    let cache = t.summary().data_set_bytes.scale(0.10);
    let mut config = SystemConfig::paper_defaults(SchemeConfig::Parity(1), cache);
    config.chunk_size = ByteSize::from_kib(16);
    let mut sys = CacheSystem::new(config);
    sys.populate(t.objects());
    for r in t.requests().iter().take(800) {
        sys.handle(r);
    }
    sys.fail_device(DeviceId(0));
    sys.insert_spare(DeviceId(0));
    assert!(sys.recovery_pending() > 0, "rebuild must be in flight");
    // Two devices die while the rebuild is still draining: with the spare
    // not yet rebuilt, 1-parity is past its tolerance and the cache folds.
    sys.fail_device(DeviceId(1));
    sys.fail_device(DeviceId(0));
    assert!(sys.is_offline(), "1-parity dies beyond its tolerance");
    assert_eq!(sys.health(), HealthState::ReadOnly);

    let mut backend_served = 0u64;
    for r in t.requests().iter().skip(800) {
        let outcome = sys.handle(r);
        match (r.op, outcome.sense) {
            (Operation::Read, SenseCode::MediumError) => backend_served += 1,
            (Operation::Read, SenseCode::NotReady) => {}
            (Operation::Write, SenseCode::Success | SenseCode::NotReady) => {}
            (op, sense) => panic!("unexpected outcome {op:?}/{sense:?} while read-only"),
        }
    }
    assert!(backend_served > 0, "the backend must carry the reads");
    assert!(sys.resilience().write_throughs > 0, "writes fall through");
}

/// A backend outage while the cache is already read-only: the system is
/// `Unavailable`, requests are shed with `NotReady` (never a panic), and
/// service returns once the backend does.
#[test]
fn backend_outage_while_read_only_becomes_unavailable() {
    let t = trace(9);
    let cache = t.summary().data_set_bytes.scale(0.10);
    let mut config = SystemConfig::paper_defaults(SchemeConfig::Parity(1), cache);
    config.chunk_size = ByteSize::from_kib(16);
    let mut sys = CacheSystem::new(config);
    sys.populate(t.objects());
    for r in t.requests().iter().take(400) {
        sys.handle(r);
    }
    sys.fail_device(DeviceId(0));
    sys.fail_device(DeviceId(1));
    assert_eq!(sys.health(), HealthState::ReadOnly);

    sys.fail_backend();
    let probe = sys.handle(&t.requests()[400]);
    assert_eq!(sys.health(), HealthState::Unavailable);
    assert_eq!(probe.sense, SenseCode::NotReady, "shed, not served wrong");
    for r in t.requests().iter().skip(401).take(200) {
        let outcome = sys.handle(r);
        assert_eq!(outcome.sense, SenseCode::NotReady);
    }
    assert!(sys.resilience().shed_requests > 0);

    sys.restore_backend();
    sys.handle(&t.requests()[601]);
    assert_eq!(sys.health(), HealthState::ReadOnly, "backend is back");
    sys.insert_spare(DeviceId(0));
    sys.insert_spare(DeviceId(1));
    assert!(sys.drain_recovery(1_000_000));
    for r in t.requests().iter().skip(602) {
        sys.handle(r);
    }
    assert_eq!(sys.health(), HealthState::Healthy, "full service restored");
}
