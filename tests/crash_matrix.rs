//! Seed-driven crash matrix: randomized power-loss points woven through a
//! live workload, with the crash-consistency invariants checked at every
//! restart.
//!
//! Each seed runs one trace and crashes the system at 8 randomized
//! request indices (drawn from a deterministic per-seed stream, so a
//! failing seed replays identically). At every crash the matrix asserts:
//!
//! * the target answers [`SenseCode::NotReady`] until recovery completes;
//! * recovery reports zero invariant violations (mapping <-> stripe
//!   consistency, no double-allocated chunk);
//! * every dirty write acknowledged before the crash is still present —
//!   and still dirty — after replay (no acknowledged write lost);
//! * a torn journal tail is detected exactly when the crash actually
//!   tore one (`partial_tail` <=> `torn_tail_detected` increment);
//! * the system keeps serving the trace afterwards.

use reo_repro::core::{CacheSystem, SchemeConfig, SystemConfig};
use reo_repro::osd::{ObjectClass, ObjectKey, SenseCode};
use reo_repro::sim::rng::DetRng;
use reo_repro::sim::ByteSize;
use reo_repro::workload::{Locality, Trace, WorkloadSpec};

const CRASHES: usize = 8;
const REQUESTS: usize = 1_600;

fn trace(seed: u64) -> Trace {
    WorkloadSpec {
        objects: 120,
        mean_object_size: ByteSize::from_kib(128),
        size_sigma: 0.7,
        locality: Locality::Medium,
        requests: REQUESTS,
        write_ratio: 0.3,
        temporal_reuse: Locality::Medium.temporal_reuse(),
        reuse_window: 120,
    }
    .generate(seed)
}

/// 8 strictly increasing crash points, one drawn from each successive
/// slice of the trace so every phase of the run (cold, warm, steady)
/// gets crashed somewhere.
fn crash_points(seed: u64) -> Vec<usize> {
    let mut rng = DetRng::from_seed(seed ^ 0x00c5_a5ed);
    let stride = REQUESTS / CRASHES;
    (0..CRASHES)
        .map(|k| k * stride + 20 + rng.below((stride - 40) as u64) as usize)
        .collect()
}

fn dirty_keys(sys: &CacheSystem) -> Vec<ObjectKey> {
    sys.target()
        .inventory()
        .into_iter()
        .filter(|(_, class, _, _)| *class == ObjectClass::Dirty)
        .map(|(key, _, _, _)| key)
        .collect()
}

fn matrix(seed: u64) {
    let t = trace(seed);
    let cache = t.summary().data_set_bytes.scale(0.10);
    let mut config = SystemConfig::paper_defaults(SchemeConfig::Reo { reserve: 0.20 }, cache);
    config.chunk_size = ByteSize::from_kib(16);
    // Checkpoint a few times mid-trace so replay exercises both the
    // checkpoint image and the log suffix behind it.
    config.checkpoint_period = 300;
    let mut sys = CacheSystem::new(config);
    sys.populate(t.objects());
    // Keep acknowledged dirty writes resident (the write-back flusher
    // would otherwise clean them between requests), so every crash tests
    // the no-acknowledged-write-lost invariant against live dirty state.
    sys.set_dirty_flush_watermark(1.0);

    let points = crash_points(seed);
    assert_eq!(points.len(), CRASHES);
    assert!(points.windows(2).all(|w| w[0] < w[1]), "points {points:?}");

    let mut next = 0usize;
    let mut expected_torn = 0u64;
    for (i, r) in t.requests().iter().enumerate() {
        if next < points.len() && i == points[next] {
            next += 1;
            let dirty_before = dirty_keys(&sys);
            let probe = sys
                .target()
                .inventory()
                .first()
                .map(|(key, _, _, _)| *key)
                .expect("populated system has objects");

            let outcome = sys.crash();
            expected_torn += u64::from(outcome.partial_tail);
            assert!(sys.target().is_warming(), "seed {seed} crash {next}");
            assert_eq!(
                sys.target().query(probe),
                SenseCode::NotReady,
                "seed {seed} crash {next}: warming target must answer NotReady"
            );
            assert_eq!(sys.cached_objects(), 0, "DRAM index must vaporize");

            let report = sys.recover().expect("restart recovery");
            assert!(
                report.target.violations.is_empty(),
                "seed {seed} crash {next}: {:?}",
                report.target.violations
            );
            assert!(!sys.target().is_warming());
            assert_eq!(
                sys.metrics().totals().torn_tail_detected,
                expected_torn,
                "seed {seed} crash {next}: torn-tail counter out of step \
                 (partial_tail was {})",
                outcome.partial_tail
            );

            let after = dirty_keys(&sys);
            for key in &dirty_before {
                assert!(
                    after.contains(key),
                    "seed {seed} crash {next}: acknowledged dirty write {key:?} lost"
                );
            }
            assert_eq!(sys.dirty_data_lost(), 0, "seed {seed} crash {next}");
            let direct = sys.target().verify_consistency();
            assert!(direct.is_empty(), "seed {seed} crash {next}: {direct:?}");
        }
        sys.handle(r);
    }
    assert_eq!(next, CRASHES, "every planned crash must have fired");

    let totals = sys.metrics().totals();
    assert_eq!(totals.requests, REQUESTS as u64);
    assert!(totals.hit_ratio_pct() > 0.0, "system must keep serving");
    assert!(totals.journal_appends > 0);
    assert!(totals.replayed_records > 0);
    assert!(totals.recovery_duration_us > 0);
    assert!(totals.checkpoint_count >= 2);
}

#[test]
fn crash_matrix_seed_11() {
    matrix(11);
}

#[test]
fn crash_matrix_seed_42() {
    matrix(42);
}

#[test]
fn crash_matrix_seed_1234() {
    matrix(1234);
}
